"""The wire protocol: newline-delimited JSON over a stream socket.

One request per line, one response per line, in order.  Both sides are
plain UTF-8 JSON objects terminated by ``\\n`` — trivially scriptable
from any language (``nc -U``, a shell loop, another Python).  The full
specification with request/response examples lives in
``docs/SERVER.md``; this module is the single source of truth for
message framing and request validation, shared by the daemon and the
client so they can never drift apart.

Requests carry ``op`` (one of :data:`REQUEST_OPS`) plus op-specific
fields and an optional caller-chosen ``id`` echoed back verbatim.
Responses carry ``ok`` (bool); failures add ``error`` and ``code``,
successes add op-specific fields — and every engine-touching response
carries a per-request ``stats`` delta
(:meth:`repro.logic.prove.EngineStats.delta_from`).
"""

from __future__ import annotations

import json
import socket
from typing import Any, Dict, Optional

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_LINE_BYTES",
    "REQUEST_OPS",
    "DEADLINE_OPS",
    "RETRYABLE_CODES",
    "ProtocolError",
    "encode",
    "decode",
    "validate_request",
    "error_response",
    "MessageStream",
]

#: bumped on any incompatible wire change; both sides exchange it in
#: the ``stats`` response and the client refuses a mismatched major.
PROTOCOL_VERSION = 1

#: hard cap on one framed message — a malformed peer cannot make the
#: daemon buffer unbounded input.
MAX_LINE_BYTES = 16 * 1024 * 1024

#: every operation the daemon answers.
REQUEST_OPS = ("check", "check_text", "eval", "stats", "reset", "shutdown", "ping")

#: op → (field, required type, required?) — the whole request schema.
_FIELDS = {
    "check": (("paths", list, True),),
    "check_text": (("name", str, True), ("text", str, True)),
    "eval": (("expr", str, True),),
    "stats": (),
    "reset": (),
    "shutdown": (),
    "ping": (),
}

#: ops that run on the engine lane and may carry a ``deadline_ms``;
#: ``ping`` is answered in the connection thread (it must work even
#: when the lane is wedged) and never queues.
DEADLINE_OPS = frozenset(("check", "check_text", "eval", "reset"))

#: error codes the client may safely retry (the request was never
#: applied, or is idempotent to reissue).
RETRYABLE_CODES = frozenset(("overloaded", "deadline_exceeded", "cancelled"))


class ProtocolError(Exception):
    """A message that cannot be framed, parsed, or validated."""


def encode(message: Dict[str, Any]) -> bytes:
    """Frame one message: compact JSON + newline."""
    try:
        line = json.dumps(message, separators=(",", ":"), ensure_ascii=False)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"unencodable message: {exc}") from exc
    # json.dumps never emits raw newlines (they are escaped inside
    # strings), so the frame is exactly one line.
    return line.encode("utf-8") + b"\n"


def decode(line: bytes) -> Dict[str, Any]:
    """Parse one framed line into a message object."""
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(f"message exceeds {MAX_LINE_BYTES} bytes")
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError("message must be a JSON object")
    return message


def validate_request(message: Dict[str, Any]) -> Dict[str, Any]:
    """Check a decoded request against the schema; returns it unchanged.

    Raises :class:`ProtocolError` with a message precise enough for the
    daemon to send straight back as the ``error`` field.
    """
    op = message.get("op")
    if op not in REQUEST_OPS:
        raise ProtocolError(
            f"unknown op {op!r}; expected one of {', '.join(REQUEST_OPS)}"
        )
    for field, kind, required in _FIELDS[op]:
        if field not in message:
            if required:
                raise ProtocolError(f"{op!r} requires field {field!r}")
            continue
        if not isinstance(message[field], kind):
            raise ProtocolError(
                f"field {field!r} of {op!r} must be {kind.__name__}"
            )
    if op == "check":
        paths = message["paths"]
        if not paths or not all(isinstance(p, str) for p in paths):
            raise ProtocolError("'paths' must be a non-empty list of strings")
    if "affinity" in message:
        # any queued op may carry an affinity key: the daemon routes
        # the connection to a stable lane at its first queued request,
        # so one logical session always hits the same warm lane.
        if op == "ping":
            raise ProtocolError("'ping' does not accept 'affinity'")
        affinity = message["affinity"]
        if not isinstance(affinity, str) or not affinity:
            raise ProtocolError("'affinity' must be a non-empty string")
    if "deadline_ms" in message:
        if op not in DEADLINE_OPS:
            raise ProtocolError(f"{op!r} does not accept 'deadline_ms'")
        deadline = message["deadline_ms"]
        if (
            isinstance(deadline, bool)
            or not isinstance(deadline, (int, float))
            or deadline <= 0
        ):
            raise ProtocolError("'deadline_ms' must be a positive number")
    return message


def error_response(
    request: Optional[Dict[str, Any]],
    code: str,
    error: str,
    retryable: bool = False,
) -> Dict[str, Any]:
    """A failure response; echoes the request's ``id`` when present.

    ``retryable=True`` marks transient failures (:data:`RETRYABLE_CODES`)
    the client's bounded-backoff loop is allowed to reissue.
    """
    response: Dict[str, Any] = {"ok": False, "code": code, "error": error}
    if retryable:
        response["retryable"] = True
    if request is not None:
        if "id" in request:
            response["id"] = request["id"]
        if "op" in request:
            response["op"] = request["op"]
    return response


class MessageStream:
    """Framed, blocking message I/O over a connected stream socket.

    Owns a receive buffer (a peer may send several frames in one
    segment, or one frame across many); enforces
    :data:`MAX_LINE_BYTES` while buffering so an unframed flood fails
    fast instead of accumulating.
    """

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._buffer = b""
        self._closed = False

    def send(self, message: Dict[str, Any]) -> None:
        self._sock.sendall(encode(message))

    def receive(self) -> Optional[Dict[str, Any]]:
        """The next message, or ``None`` on a clean peer close."""
        while b"\n" not in self._buffer:
            if len(self._buffer) > MAX_LINE_BYTES:
                raise ProtocolError(f"message exceeds {MAX_LINE_BYTES} bytes")
            chunk = self._sock.recv(65536)
            if not chunk:
                if self._buffer.strip():
                    raise ProtocolError("connection closed mid-message")
                return None
            self._buffer += chunk
        line, self._buffer = self._buffer.split(b"\n", 1)
        return decode(line)

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            try:
                self._sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            self._sock.close()
