"""A small blocking client for the checking daemon.

One connection, one session: the daemon scopes module stores, REPL
scope and the theory lease to the connection, so a :class:`Client`
*is* a session.  Requests are answered in order; every engine-touching
response carries the per-request ``stats`` delta.

    >>> from repro.server import Client
    >>> with Client(socket_path="/tmp/repro.sock") as client:
    ...     client.check_text("demo", "(define x 1)")["ok"]
    True

``repro client`` wraps this for shell scripting; build richer front
ends (editors, watch loops) directly on the class.
"""

from __future__ import annotations

import socket
from typing import Any, Dict, List, Optional, Sequence

from .protocol import MessageStream, ProtocolError

__all__ = ["Client", "ServerError"]


class ServerError(Exception):
    """The daemon answered with ``ok: false``.

    The failed response is available as :attr:`response` (``code``
    distinguishes protocol misuse from check/runtime failures).
    """

    def __init__(self, response: Dict[str, Any]):
        self.response = response
        code = response.get("code", "error")
        super().__init__(f"[{code}] {response.get('error', 'request failed')}")


class Client:
    """A blocking NDJSON client; one instance per daemon session."""

    def __init__(
        self,
        socket_path: Optional[str] = None,
        host: str = "127.0.0.1",
        port: Optional[int] = None,
        timeout: Optional[float] = 60.0,
    ) -> None:
        if (socket_path is None) == (port is None):
            raise ValueError("pass exactly one of socket_path or port")
        if socket_path is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(timeout)
            sock.connect(socket_path)
        else:
            sock = socket.create_connection((host, port), timeout=timeout)
        self._stream = MessageStream(sock)
        self._next_id = 0

    # ------------------------------------------------------------------
    def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Send one request and block for its response.

        Raises :class:`ServerError` on an ``ok: false`` response and
        :class:`ProtocolError` if the connection drops mid-response.
        """
        self._next_id += 1
        message = {"op": op, "id": self._next_id, **fields}
        self._stream.send(message)
        response = self._stream.receive()
        if response is None:
            raise ProtocolError("server closed the connection")
        if not response.get("ok", False):
            raise ServerError(response)
        return response

    # convenience wrappers, one per protocol op -------------------------
    def check(self, paths: Sequence[str]) -> Dict[str, Any]:
        """Check modules on disk; raises on an ill-typed module.

        Use :meth:`try_check` when a failing verdict is an expected
        outcome rather than an error.
        """
        return self.request("check", paths=list(paths))

    def try_check(self, paths: Sequence[str]) -> Dict[str, Any]:
        """Like :meth:`check` but returns the response even on failure."""
        try:
            return self.check(paths)
        except ServerError as exc:
            if "verdicts" in exc.response:
                return exc.response
            raise

    def check_text(self, name: str, text: str) -> Dict[str, Any]:
        """Check a named module's source; session-scoped incremental."""
        try:
            return self.request("check_text", name=name, text=text)
        except ServerError as exc:
            if exc.response.get("code") == "check-error":
                return exc.response
            raise

    def eval(self, expr: str) -> List[str]:
        """Check + evaluate in this session's scope; returns renderings."""
        return self.request("eval", expr=expr)["values"]

    def stats(self) -> Dict[str, Any]:
        return self.request("stats")

    def reset(self) -> Dict[str, Any]:
        """Drop every engine cache (cold-start the daemon in place)."""
        return self.request("reset")

    def shutdown(self) -> Dict[str, Any]:
        return self.request("shutdown")

    # ------------------------------------------------------------------
    def close(self) -> None:
        self._stream.close()

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
