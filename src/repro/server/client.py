"""A small blocking client for the checking daemon.

One connection, one session: the daemon scopes module stores, REPL
scope and the theory lease to the connection, so a :class:`Client`
*is* a session.  Requests are answered in order; every engine-touching
response carries the per-request ``stats`` delta.

    >>> from repro.server import Client
    >>> with Client(socket_path="/tmp/repro.sock") as client:
    ...     client.check_text("demo", "(define x 1)")["ok"]
    True

Resilience (all opt-in via ``retries``): responses the daemon marks
``retryable`` — ``overloaded`` shed under backpressure,
``deadline_exceeded``/``cancelled`` aborts — are reissued with
exponential backoff plus deterministic jitter, and a broken connection
(daemon restart, dropped socket) is transparently re-dialled before
the retry.  Reconnecting starts a *fresh server session* (module
stores are connection-scoped); verdicts are unaffected — they are
content-addressed — but incremental ``check_text`` state re-warms.
Engine requests accept ``deadline_ms``; :meth:`ping` is the health
probe the daemon answers even when its engine lane is busy.

``repro client`` wraps this for shell scripting; build richer front
ends (editors, watch loops) directly on the class.
"""

from __future__ import annotations

import random
import socket
import time
from typing import Any, Dict, List, Optional, Sequence

from .protocol import MessageStream, ProtocolError

__all__ = ["Client", "ServerError"]


class ServerError(Exception):
    """The daemon answered with ``ok: false``.

    The failed response is available as :attr:`response` (``code``
    distinguishes protocol misuse from check/runtime failures;
    :attr:`retryable` marks transient failures safe to reissue).
    """

    def __init__(self, response: Dict[str, Any]):
        self.response = response
        code = response.get("code", "error")
        super().__init__(f"[{code}] {response.get('error', 'request failed')}")

    @property
    def code(self) -> str:
        return str(self.response.get("code", "error"))

    @property
    def retryable(self) -> bool:
        return bool(self.response.get("retryable", False))


class Client:
    """A blocking NDJSON client; one instance per daemon session.

    ``retries=0`` (the default) preserves strict fail-fast semantics;
    ``retries=N`` allows up to N reissues of a request that failed
    retryably or whose connection broke, with exponential backoff
    (``backoff * 2**attempt``, capped at ``max_backoff``) and
    deterministic jitter (seeded by ``jitter_seed``, so tests and
    campaigns replay exactly).
    """

    def __init__(
        self,
        socket_path: Optional[str] = None,
        host: str = "127.0.0.1",
        port: Optional[int] = None,
        timeout: Optional[float] = 60.0,
        retries: int = 0,
        backoff: float = 0.05,
        max_backoff: float = 2.0,
        jitter_seed: int = 0,
        affinity: Optional[str] = None,
    ) -> None:
        if (socket_path is None) == (port is None):
            raise ValueError("pass exactly one of socket_path or port")
        if affinity is not None and (not isinstance(affinity, str) or not affinity):
            raise ValueError("affinity must be a non-empty string")
        #: lane-affinity key sent with every queued request: the daemon
        #: hashes it to a stable lane, so a reconnecting client with the
        #: same key lands back on its warm lane (module caches and all)
        self.affinity = affinity
        self._socket_path = socket_path
        self._host = host
        self._port = port
        self._timeout = timeout
        self.retries = max(0, int(retries))
        self.backoff = backoff
        self.max_backoff = max_backoff
        self._rng = random.Random(jitter_seed)
        #: resilience counters (for campaign reports and curiosity)
        self.retries_total = 0
        self.reconnects_total = 0
        self._stream: Optional[MessageStream] = None
        self._next_id = 0
        self._connect()

    def _connect(self) -> None:
        """Dial the daemon; never leaks the socket on a failed dial."""
        if self._socket_path is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            try:
                sock.settimeout(self._timeout)
                sock.connect(self._socket_path)
            except BaseException:
                sock.close()
                raise
        else:
            sock = socket.create_connection(
                (self._host, self._port), timeout=self._timeout
            )
        self._stream = MessageStream(sock)

    def _drop_stream(self) -> None:
        if self._stream is not None:
            self._stream.close()
            self._stream = None

    def _sleep_before_retry(self, attempt: int) -> None:
        delay = min(self.max_backoff, self.backoff * (2 ** attempt))
        # jitter in [0.5, 1.0) × delay: retries from many clients decorrelate
        time.sleep(delay * (0.5 + 0.5 * self._rng.random()))

    # ------------------------------------------------------------------
    def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Send one request and block for its response.

        Raises :class:`ServerError` on an ``ok: false`` response and
        :class:`ProtocolError` if the connection drops mid-response
        (after exhausting ``retries``, when configured).  Fields whose
        value is ``None`` are omitted, so ``deadline_ms=None`` means
        "no deadline".
        """
        payload = {k: v for k, v in fields.items() if v is not None}
        if self.affinity is not None and op != "ping":
            payload.setdefault("affinity", self.affinity)
        last_exc: Optional[BaseException] = None
        for attempt in range(self.retries + 1):
            if attempt:
                self.retries_total += 1
                self._sleep_before_retry(attempt - 1)
            self._next_id += 1
            message = {"op": op, "id": self._next_id, **payload}
            try:
                if self._stream is None:
                    # broken pipe on a previous attempt (or a failed
                    # initial dial followed by reuse): re-dial
                    self._connect()
                    self.reconnects_total += 1
                self._stream.send(message)
                response = self._stream.receive()
                if response is None:
                    raise ProtocolError("server closed the connection")
            except (OSError, ProtocolError) as exc:
                # the connection is unusable; drop it so the next
                # attempt re-dials a fresh one
                self._drop_stream()
                last_exc = exc
                continue
            if not response.get("ok", False):
                error = ServerError(response)
                if error.retryable and attempt < self.retries:
                    last_exc = error
                    continue
                raise error
            return response
        assert last_exc is not None
        raise last_exc

    # convenience wrappers, one per protocol op -------------------------
    def check(
        self, paths: Sequence[str], deadline_ms: Optional[float] = None
    ) -> Dict[str, Any]:
        """Check modules on disk; raises on an ill-typed module.

        Use :meth:`try_check` when a failing verdict is an expected
        outcome rather than an error.
        """
        return self.request("check", paths=list(paths), deadline_ms=deadline_ms)

    def try_check(
        self, paths: Sequence[str], deadline_ms: Optional[float] = None
    ) -> Dict[str, Any]:
        """Like :meth:`check` but returns the response even on failure."""
        try:
            return self.check(paths, deadline_ms=deadline_ms)
        except ServerError as exc:
            if "verdicts" in exc.response:
                return exc.response
            raise

    def check_text(
        self, name: str, text: str, deadline_ms: Optional[float] = None
    ) -> Dict[str, Any]:
        """Check a named module's source; session-scoped incremental."""
        try:
            return self.request(
                "check_text", name=name, text=text, deadline_ms=deadline_ms
            )
        except ServerError as exc:
            if exc.response.get("code") == "check-error":
                return exc.response
            raise

    def eval(self, expr: str, deadline_ms: Optional[float] = None) -> List[str]:
        """Check + evaluate in this session's scope; returns renderings."""
        return self.request("eval", expr=expr, deadline_ms=deadline_ms)["values"]

    def stats(self) -> Dict[str, Any]:
        return self.request("stats")

    def ping(self) -> Dict[str, Any]:
        """Health probe: answered by the connection thread, never queued."""
        return self.request("ping")

    def reset(self) -> Dict[str, Any]:
        """Drop every engine cache (cold-start the daemon in place)."""
        return self.request("reset")

    def shutdown(self) -> Dict[str, Any]:
        return self.request("shutdown")

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close the connection; safe to call any number of times."""
        self._drop_stream()

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
