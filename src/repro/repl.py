"""An interactive read-check-eval loop for RTR.

``python -c "from repro.repl import repl; repl()"`` (or build your own
front end on :class:`Session`).  Each input is type checked against the
session's accumulated definitions before it is evaluated, so the REPL
never executes an unsafe access; ill-typed input reports the paper-style
error box and leaves the session unchanged.

Directives:

* ``:type EXPR``  — show an expression's full type-result
* ``:env``        — list the definitions in scope
* ``:quit``       — leave
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .checker.check import Checker
from .checker.errors import CheckError
from .interp.eval import run_program
from .interp.values import RacketError, value_repr
from .logic.env import Env
from .sexp.reader import ReaderError, read_all
from .syntax.parser import ParseError, parse_program
from .syntax.ast import Program
from .tr.pretty import pretty_result, pretty_type
from .tr.subst import close_result
from .tr.types import Type

__all__ = ["Session", "repl"]


class Session:
    """Accumulates definitions; checks and runs each new input."""

    def __init__(self) -> None:
        self._forms: List[str] = []

    # ------------------------------------------------------------------
    def _program_with(self, text: str) -> Program:
        return parse_program("\n".join(self._forms + [text]))

    def submit(self, text: str) -> List[str]:
        """Check + run one input; returns display lines.

        Raises ``ParseError``/``CheckError``/``RacketError`` without
        modifying the session.
        """
        program = self._program_with(text)
        Checker().check_program(program)
        _defs, results = run_program(program)
        # Committed: remember the input for future scope.
        self._forms.append(text)
        # Only the freshly-added body expressions produce output.
        previous = self._count_body(self._forms[:-1])
        return [value_repr(v) for v in results[previous:]]

    def _count_body(self, forms: List[str]) -> int:
        if not forms:
            return 0
        program = parse_program("\n".join(forms))
        return len(program.body)

    def type_of(self, text: str) -> str:
        """The type-result of an expression in the session scope."""
        program = self._program_with(text)
        checker = Checker()
        if not program.body:
            # a definition: check it and report the declared/computed type
            types = checker.check_program(program)
            name = parse_program(text).defines[-1].name
            return f"{name} : {pretty_type(types[name])}"
        types_env = self._seed_env(checker, program)
        result = checker.synth(types_env, program.body[-1])
        return pretty_result(close_result(result))

    def _seed_env(self, checker: Checker, program: Program) -> Env:
        from .checker.mutation import mutated_variables
        from .tr.props import IsType
        from .tr.objects import Var

        checker._mutated = mutated_variables(program)
        env = Env()
        types = checker.check_program(
            Program(program.defines, ())
        )
        for name, ty in types.items():
            env = checker.logic.extend(env, IsType(Var(name), ty))
        return env

    def names(self) -> List[str]:
        if not self._forms:
            return []
        return [d.name for d in parse_program("\n".join(self._forms)).defines]


def repl(input_fn=input, print_fn=print) -> None:  # pragma: no cover - thin loop
    """Run the interactive loop (dependency-injectable for tests)."""
    session = Session()
    print_fn("λRTR — Occurrence Typing Modulo Theories (PLDI 2016)")
    print_fn('type :quit to exit, :type EXPR for types, :env for scope\n')
    while True:
        try:
            line = input_fn("rtr> ")
        except EOFError:
            break
        line = line.strip()
        if not line:
            continue
        if line in (":quit", ":q"):
            break
        try:
            if line == ":env":
                names = session.names()
                print_fn("  " + (", ".join(names) if names else "(empty)"))
            elif line.startswith(":type "):
                print_fn("  " + session.type_of(line[len(":type "):]))
            else:
                for rendered in session.submit(line):
                    print_fn(rendered)
        except (ReaderError, ParseError, CheckError, RacketError) as exc:
            print_fn(f"error: {exc}")
