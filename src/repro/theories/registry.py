"""Theory registry: the set of solvers L-Theory may consult.

The paper's logic is parameterised over "a small but extensible set" of
theories; this registry is that parameter.  The default registry holds
the two theories the paper integrates (linear integer arithmetic and
bitvectors), and new :class:`~repro.theories.base.Theory` instances can
be registered at runtime — the integration recipe of section 3.4.
"""

from __future__ import annotations

from typing import List, Sequence

from ..tr.props import Prop, TheoryProp
from .base import Theory
from .bitvec import BitvectorTheory
from .congruence import CongruenceTheory
from .linarith import LinearArithmeticTheory

__all__ = ["TheoryRegistry", "default_registry"]


class TheoryRegistry:
    """An ordered collection of theories tried in turn on each goal."""

    def __init__(self, theories: Sequence[Theory] = ()):
        self._theories: List[Theory] = list(theories)

    def register(self, theory: Theory) -> None:
        """Add a theory (section 3.4's extension point)."""
        self._theories.append(theory)

    @property
    def theories(self) -> Sequence[Theory]:
        return tuple(self._theories)

    def entails(self, assumptions: Sequence[Prop], goal: TheoryProp) -> bool:
        """L-Theory: ``[[Γ]]_T ⊨ χ_T`` for some registered theory T."""
        for theory in self._theories:
            if theory.accepts(goal) and theory.entails(assumptions, goal):
                return True
        return False


def default_registry() -> TheoryRegistry:
    """The registry used by RTR: linear arithmetic, bitvectors, and the
    congruence extension (section 3.4's recipe applied a third time)."""
    return TheoryRegistry(
        [LinearArithmeticTheory(), BitvectorTheory(), CongruenceTheory()]
    )
