"""Theory registry: the set of solvers L-Theory may consult.

The paper's logic is parameterised over "a small but extensible set" of
theories; this registry is that parameter.  The default registry holds
the two theories the paper integrates (linear integer arithmetic and
bitvectors) plus the congruence extension, and new
:class:`~repro.theories.base.Theory` instances can be registered at
runtime — the integration recipe of section 3.4.

Two query paths are offered:

* :meth:`TheoryRegistry.entails` — the one-shot batch judgment.  Each
  theory now only sees the assumptions it :meth:`~Theory.accepts`,
  instead of being handed the full assumption list to re-filter on
  every goal.
* :meth:`TheoryRegistry.session` — a :class:`RegistrySession` bundling
  one incremental :class:`~repro.theories.base.TheoryContext` per
  theory.  The proof engine keeps a session per environment state and
  derives child sessions from parent ones, so Γ is translated into each
  solver once rather than once per goal.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..tr.props import Prop, TheoryProp
from .base import Theory, TheoryContext
from .bitvec import BitvectorTheory
from .congruence import CongruenceTheory
from .linarith import LinearArithmeticTheory

__all__ = ["TheoryRegistry", "RegistrySession", "default_registry"]


class TheoryRegistry:
    """An ordered collection of theories tried in turn on each goal."""

    def __init__(self, theories: Sequence[Theory] = ()):
        self._theories: List[Theory] = list(theories)

    def register(self, theory: Theory) -> None:
        """Add a theory (section 3.4's extension point)."""
        self._theories.append(theory)

    @property
    def theories(self) -> Sequence[Theory]:
        return tuple(self._theories)

    def entails(self, assumptions: Sequence[Prop], goal: TheoryProp) -> bool:
        """L-Theory: ``[[Γ]]_T ⊨ χ_T`` for some registered theory T.

        Assumptions are pre-filtered per theory with ``accepts`` — a
        theory is only handed atoms it can decide, never the raw
        environment projection (dropping assumptions is sound, and each
        solver was re-filtering internally anyway).
        """
        for theory in self._theories:
            if not theory.accepts(goal):
                continue
            relevant = [
                prop
                for prop in assumptions
                if isinstance(prop, TheoryProp) and theory.accepts(prop)
            ]
            if theory.entails(relevant, goal):
                return True
        return False

    def entails_batch(
        self, assumptions: Sequence[Prop], goals: Sequence[TheoryProp]
    ) -> List[bool]:
        """The batched L-Theory judgment, positionally.

        Assumptions are filtered per theory *once* for the whole batch
        and each theory receives a single :meth:`Theory.entails_batch`
        call covering every goal it accepts that an earlier theory has
        not already discharged — answer-equivalent to per-goal
        :meth:`entails` but with one dispatch per theory instead of
        one per (theory, goal) pair.
        """
        goals = list(goals)
        verdicts: Dict[TheoryProp, bool] = {goal: False for goal in goals}
        remaining = list(verdicts)
        for theory in self._theories:
            if not remaining:
                break
            attempt = [goal for goal in remaining if theory.accepts(goal)]
            if not attempt:
                continue
            relevant = [
                prop
                for prop in assumptions
                if isinstance(prop, TheoryProp) and theory.accepts(prop)
            ]
            for goal, answer in zip(attempt, theory.entails_batch(relevant, attempt)):
                if answer:
                    verdicts[goal] = True
            remaining = [goal for goal in remaining if not verdicts[goal]]
        return [verdicts[goal] for goal in goals]

    def session(
        self,
        counters: Optional[Dict[str, int]] = None,
        solver_counters: Optional[Dict[str, int]] = None,
    ) -> "RegistrySession":
        """A fresh incremental session over all registered theories."""
        return RegistrySession(self._theories, counters, solver_counters)


class RegistrySession:
    """One incremental context per theory, driven in lock-step.

    ``assert_prop`` fans an assumption out to the contexts that accept
    it; ``entails`` consults the accepting theories in registration
    order, memoising each goal's answer until the assumption set
    changes.  ``push``/``pop`` bracket speculative assumptions across
    every context at once, and ``derive`` forks the session (cloning
    the translated solver state) and asserts a delta — how a child
    environment's session is built from its parent's without
    re-encoding Γ.

    ``counters`` (theory name → query count) is shared with the caller
    so the engine can report per-theory query totals;
    ``solver_counters`` (core counter name → count, e.g.
    ``simplex.pivots``) is bound into every context so the solver cores
    report their work through ``EngineStats``.
    """

    __slots__ = (
        "_theories",
        "_contexts",
        "_memo",
        "counters",
        "solver_counters",
        "stale",
    )

    def __init__(
        self,
        theories: Sequence[Theory],
        counters: Optional[Dict[str, int]] = None,
        solver_counters: Optional[Dict[str, int]] = None,
    ) -> None:
        self._theories: List[Theory] = list(theories)
        self._contexts: List[TheoryContext] = [t.context() for t in self._theories]
        self._memo: Dict[TheoryProp, bool] = {}
        self.counters = counters if counters is not None else {}
        self.solver_counters = solver_counters
        if solver_counters is not None:
            for context in self._contexts:
                context.bind_counters(solver_counters)
        #: set by :meth:`invalidate` (an engine reset): answers stay
        #: sound, but epoch-guarded holders (``Logic.lease_session``)
        #: rebuild rather than carry pre-reset solver state forward.
        self.stale = False

    # ------------------------------------------------------------------
    def assert_prop(self, prop: Prop) -> None:
        if not isinstance(prop, TheoryProp):
            return
        for theory, context in zip(self._theories, self._contexts):
            if theory.accepts(prop):
                context.assert_prop(prop)
        self._memo = {}

    def assert_all(self, props: Sequence[Prop]) -> None:
        for prop in props:
            self.assert_prop(prop)

    def push(self) -> None:
        for context in self._contexts:
            context.push()

    def pop(self) -> None:
        for context in self._contexts:
            context.pop()
        self._memo = {}

    # ------------------------------------------------------------------
    def entails(self, goal: TheoryProp) -> bool:
        cached = self._memo.get(goal)
        if cached is not None:
            return cached
        result = False
        for theory, context in zip(self._theories, self._contexts):
            if not theory.accepts(goal):
                continue
            self.counters[theory.name] = self.counters.get(theory.name, 0) + 1
            if context.entails(goal):
                result = True
                break
        self._memo[goal] = result
        return result

    def entails_batch(self, goals: Sequence[TheoryProp]) -> List[bool]:
        """Decide a batch of goals with one dispatch per theory.

        The kernel's theory stage groups goal atoms and calls this once
        per session instead of N times: unresolved goals flow through
        the theories in registration order, each theory seeing the
        whole sub-batch it accepts via one
        :meth:`TheoryContext.entails_batch` call.  Memoisation and the
        per-theory query counters behave exactly as N single-goal
        :meth:`entails` calls would.
        """
        goals = list(goals)
        results: List[Optional[bool]] = [None] * len(goals)
        positions: Dict[TheoryProp, List[int]] = {}
        for index, goal in enumerate(goals):
            cached = self._memo.get(goal)
            if cached is not None:
                results[index] = cached
            else:
                positions.setdefault(goal, []).append(index)
        if positions:
            verdicts: Dict[TheoryProp, bool] = {goal: False for goal in positions}
            remaining = list(verdicts)
            for theory, context in zip(self._theories, self._contexts):
                if not remaining:
                    break
                attempt = [goal for goal in remaining if theory.accepts(goal)]
                if not attempt:
                    continue
                self.counters[theory.name] = (
                    self.counters.get(theory.name, 0) + len(attempt)
                )
                for goal, answer in zip(attempt, context.entails_batch(attempt)):
                    if answer:
                        verdicts[goal] = True
                remaining = [goal for goal in remaining if not verdicts[goal]]
            for goal, verdict in verdicts.items():
                self._memo[goal] = verdict
                for index in positions[goal]:
                    results[index] = verdict
        return [bool(answer) for answer in results]

    def invalidate(self) -> None:
        """Drop memoised answers so a retained handle recomputes.

        Used by ``Logic.reset_caches``: sessions already handed out
        must never replay a pre-reset answer.  The translated solver
        state stays (it is derived from assumptions, not from queries),
        but the session is marked :attr:`stale` so lease holders know
        to rebuild instead of deriving from it.
        """
        self._memo = {}
        self.stale = True

    def linear_unsat(self) -> bool:
        """Is the linear fragment of the asserted assumptions absurd?

        Mirrors the Γ ⊢ ff check the proof engine used to run by
        re-translating every LeqZero fact per call.
        """
        for theory, context in zip(self._theories, self._contexts):
            if isinstance(theory, LinearArithmeticTheory) and context.is_unsat():
                return True
        return False

    def derive(self, delta: Sequence[Prop]) -> "RegistrySession":
        """Fork this session and assert ``delta`` on the copy."""
        dup = RegistrySession.__new__(RegistrySession)
        dup._theories = self._theories
        dup._contexts = [context.clone() for context in self._contexts]
        dup._memo = dict(self._memo) if not delta else {}
        dup.counters = self.counters
        # Context clones carry their counter binding; keep the handle so
        # further derivations stay attached to the same shared dict.
        dup.solver_counters = self.solver_counters
        dup.stale = self.stale  # a clone of invalidated state is itself stale
        for prop in delta:
            for theory, context in zip(dup._theories, dup._contexts):
                if isinstance(prop, TheoryProp) and theory.accepts(prop):
                    context.assert_prop(prop)
        return dup


def default_registry(backend: Optional[str] = None) -> TheoryRegistry:
    """The registry used by RTR: linear arithmetic, bitvectors, and the
    congruence extension (section 3.4's recipe applied a third time).

    ``backend`` pins the solver cores (``fast``/``legacy``) for every
    solver-backed theory; ``None`` follows the process-wide
    ``solver_backend`` knob.
    """
    return TheoryRegistry(
        [
            LinearArithmeticTheory(backend=backend),
            BitvectorTheory(backend=backend),
            CongruenceTheory(),
        ]
    )
