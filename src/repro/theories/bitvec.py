"""The theory of fixed-width bitvectors (section 2.2).

Where the paper leverages Z3's bitvector reasoning, this reproduction
bit-blasts to CNF (:mod:`repro.solvers.bitblast`) and refutes with a
DPLL SAT solver — the same refutation discipline an SMT backend uses.

Semantics bridged here: at the program level bitvector operations act
on ordinary non-negative integers (``AND``/``XOR``/``*`` on bytes in
the AES example), so the solver works at an internal width wide enough
that no encoded term can wrap.  Before encoding, every atom is checked
to be *grounded*: a conservative interval analysis over the available
range assumptions must bound it below ``2^width``.  If any term cannot
be bounded the query is declined (sound: "not proved").
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..solvers.bitblast import BitBlaster, Bits
from ..tr.objects import BVExpr, LinExpr, Obj
from ..tr.props import BVProp, LeqZero, Prop, TheoryProp
from .base import Theory

__all__ = ["BitvectorTheory"]

#: Internal blasting width: wide enough for byte arithmetic (sums and
#: constant products of bytes stay far below 2^24).
DEFAULT_WIDTH = 24


def _mentions_bv(obj: Obj) -> bool:
    if isinstance(obj, BVExpr):
        return True
    if isinstance(obj, LinExpr):
        return any(_mentions_bv(atom) for atom, _ in obj.terms)
    return False


class _Bounds:
    """Upper bounds (exclusive of negativity) gathered from assumptions.

    ``lo[o] = 0`` records ``0 ≤ o``; ``hi[o] = c`` records ``o ≤ c``.
    Only single-atom, unit-coefficient facts feed the table — exactly
    the shape refinement types such as ``Byte`` produce.
    """

    def __init__(self) -> None:
        self.nonneg: set = set()
        self.hi: Dict[Obj, int] = {}

    def absorb(self, atom: LeqZero) -> None:
        expr = atom.expr
        if len(expr.terms) != 1:
            return
        obj, coeff = expr.terms[0]
        if coeff == 1:
            # o + c ≤ 0  ⟹  o ≤ -c
            bound = -expr.const
            if obj not in self.hi or bound < self.hi[obj]:
                self.hi[obj] = bound
        elif coeff == -1:
            # -o + c ≤ 0  ⟹  o ≥ c
            if expr.const >= 0:
                self.nonneg.add(obj)

    def max_value(self, obj: Union[Obj, int]) -> Optional[int]:
        """A conservative upper bound on the integer value of ``obj``.

        ``None`` means "cannot bound" — the query must be declined.
        Requires non-negativity for opaque atoms so that unsigned
        encoding is faithful.
        """
        if isinstance(obj, int):
            return obj if obj >= 0 else None
        if isinstance(obj, LinExpr):
            total = obj.const
            if obj.const < 0:
                return None
            for atom, coeff in obj.terms:
                if coeff < 0:
                    return None
                inner = self.max_value(atom)
                if inner is None:
                    return None
                total += coeff * inner
            return total
        if isinstance(obj, BVExpr):
            args = [self.max_value(a) for a in obj.args]
            if any(a is None for a in args):
                return None
            if obj.op in ("and",):
                return min(a for a in args)  # AND cannot exceed either side
            if obj.op in ("or", "xor"):
                peak = max(args)
                # or/xor of values < 2^k stay < 2^k
                bits = peak.bit_length()
                return (1 << bits) - 1
            if obj.op == "not":
                return (1 << obj.width) - 1
            if obj.op == "add":
                return sum(args)
            if obj.op == "mul":
                out = 1
                for a in args:
                    out *= a
                return out
            if obj.op == "shl":
                base, amount = args
                return base << amount
            if obj.op == "lshr":
                return args[0]
            return None
        # Opaque atom (variable, field reference): needs recorded bounds.
        if obj in self.nonneg and obj in self.hi:
            return self.hi[obj]
        return None


class BitvectorTheory(Theory):
    """Bit-blasting + DPLL decision procedure for bitvector atoms."""

    name = "bitvectors"

    def __init__(self, width: int = DEFAULT_WIDTH):
        self.width = width

    def accepts(self, goal: TheoryProp) -> bool:
        # Linear goals are accepted too: when bitvector *facts* are in
        # play (e.g. "the high bit is clear"), a purely linear goal like
        # ``num ≤ 127`` may only be decidable by blasting.  Ungroundable
        # goals are declined cheaply inside :meth:`entails`.
        return isinstance(goal, (BVProp, LeqZero))

    # ------------------------------------------------------------------
    def entails(self, assumptions: Sequence[Prop], goal: TheoryProp) -> bool:
        bounds = _Bounds()
        bv_assumptions: List[BVProp] = []
        lin_assumptions: List[LeqZero] = []
        for prop in assumptions:
            if isinstance(prop, LeqZero):
                bounds.absorb(prop)
                lin_assumptions.append(prop)
            elif isinstance(prop, BVProp):
                bv_assumptions.append(prop)
        # Propagate bounds through equalities: an opaque atom equal to a
        # groundable term inherits its range (iterate for chains).
        for _ in range(len(bv_assumptions) + 1):
            changed = False
            for prop in bv_assumptions:
                if prop.op != "=":
                    continue
                for var_side, expr_side in ((prop.lhs, prop.rhs), (prop.rhs, prop.lhs)):
                    if isinstance(var_side, (BVExpr, LinExpr)):
                        continue
                    if bounds.max_value(var_side) is not None:
                        continue
                    peak = bounds.max_value(expr_side)
                    if peak is not None:
                        bounds.nonneg.add(var_side)
                        bounds.hi[var_side] = peak
                        changed = True
            if not changed:
                break

        blaster = BitBlaster()
        encoder = _Encoder(blaster, bounds, self.width)

        goal_lit = encoder.encode_prop(goal)
        if goal_lit is None:
            return False  # goal not groundable: decline

        for prop in bv_assumptions:
            lit = encoder.encode_prop(prop)
            if lit is not None:
                blaster.assert_lit(lit)
        for prop in lin_assumptions:
            lit = encoder.encode_prop(prop)
            if lit is not None:
                blaster.assert_lit(lit)

        blaster.assert_lit(-goal_lit)
        return not blaster.check_sat()


class _Encoder:
    """Encodes objects and atoms against a :class:`BitBlaster`."""

    def __init__(self, blaster: BitBlaster, bounds: _Bounds, width: int):
        self.blaster = blaster
        self.bounds = bounds
        self.width = width
        self._cache: Dict[Obj, Optional[Bits]] = {}

    def _fits(self, obj: Union[Obj, int]) -> bool:
        peak = self.bounds.max_value(obj)
        return peak is not None and peak < (1 << self.width)

    def encode_obj(self, obj: Union[Obj, int]) -> Optional[Bits]:
        if isinstance(obj, int):
            if 0 <= obj < (1 << self.width):
                return self.blaster.constant(obj, self.width)
            return None
        if obj in self._cache:
            return self._cache[obj]
        self._cache[obj] = None  # cycle guard
        bits = self._encode_obj(obj)
        self._cache[obj] = bits
        return bits

    def _encode_obj(self, obj: Obj) -> Optional[Bits]:
        if isinstance(obj, LinExpr):
            if not self._fits(obj):
                return None
            acc = self.blaster.constant(obj.const, self.width)
            for atom, coeff in obj.terms:
                inner = self.encode_obj(atom)
                if inner is None:
                    return None
                scaled = self.blaster.bv_mul(
                    inner, self.blaster.constant(coeff, self.width)
                )
                acc = self.blaster.bv_add(acc, scaled)
            return acc
        if isinstance(obj, BVExpr):
            if not self._fits(obj):
                return None
            args: List[Bits] = []
            for arg in obj.args:
                encoded = self.encode_obj(arg)
                if encoded is None:
                    return None
                args.append(encoded)
            op = obj.op
            if op == "and":
                return self.blaster.bv_and(*args)
            if op == "or":
                return self.blaster.bv_or(*args)
            if op == "xor":
                return self.blaster.bv_xor(*args)
            if op == "not":
                # Integer-level NOT within the declared width: x ^ (2^w - 1).
                mask = self.blaster.constant((1 << obj.width) - 1, self.width)
                return self.blaster.bv_xor(args[0], mask)
            if op == "add":
                return self.blaster.bv_add(*args)
            if op == "mul":
                return self.blaster.bv_mul(*args)
            if op == "shl":
                amount = obj.args[1]
                if not isinstance(amount, int):
                    return None
                return self.blaster.bv_shl(args[0], amount)
            if op == "lshr":
                amount = obj.args[1]
                if not isinstance(amount, int):
                    return None
                return self.blaster.bv_lshr(args[0], amount)
            return None
        # Opaque atom: encode as a variable, constrained by its bounds.
        if not self._fits(obj):
            return None
        bits = self.blaster.variable(obj, self.width)
        hi = self.bounds.hi.get(obj)
        if hi is not None:
            hi_bits = self.blaster.constant(hi, self.width)
            self.blaster.assert_lit(self.blaster.bv_ule(bits, hi_bits))
        return bits

    def _split_linear(self, expr: LinExpr) -> Optional[Tuple[Bits, Bits]]:
        """Encode ``expr ≤ 0`` as ``pos ≤ᵤ neg`` with both sides ≥ 0.

        Positive-coefficient terms and a positive constant go on the
        left; negated negative-coefficient terms and a negative
        constant (negated) on the right.
        """
        pos: Bits = self.blaster.constant(max(expr.const, 0), self.width)
        neg: Bits = self.blaster.constant(max(-expr.const, 0), self.width)
        pos_peak = max(expr.const, 0)
        neg_peak = max(-expr.const, 0)
        for atom, coeff in expr.terms:
            inner = self.encode_obj(atom)
            if inner is None:
                return None
            peak = self.bounds.max_value(atom)
            if peak is None:
                return None
            scaled = self.blaster.bv_mul(
                inner, self.blaster.constant(abs(coeff), self.width)
            )
            if coeff > 0:
                pos = self.blaster.bv_add(pos, scaled)
                pos_peak += coeff * peak
            else:
                neg = self.blaster.bv_add(neg, scaled)
                neg_peak += -coeff * peak
        if pos_peak >= (1 << self.width) or neg_peak >= (1 << self.width):
            return None
        return pos, neg

    def encode_prop(self, prop: Prop) -> Optional[int]:
        """Encode an atom as a single literal, or ``None`` to decline."""
        if isinstance(prop, LeqZero):
            sides = self._split_linear(prop.expr)
            if sides is None:
                return None
            pos, neg = sides
            return self.blaster.bv_ule(pos, neg)
        if isinstance(prop, BVProp):
            lhs = self.encode_obj(prop.lhs)
            rhs = self.encode_obj(prop.rhs)
            if lhs is None or rhs is None:
                return None
            op = prop.op
            if op == "=":
                return self.blaster.bv_eq(lhs, rhs)
            if op == "≠":
                return -self.blaster.bv_eq(lhs, rhs)
            if op == "≤":
                return self.blaster.bv_ule(lhs, rhs)
            if op == "<":
                return self.blaster.bv_ult(lhs, rhs)
            if op == "≥":
                return self.blaster.bv_ule(rhs, lhs)
            if op == ">":
                return self.blaster.bv_ult(rhs, lhs)
            return None
        return None
