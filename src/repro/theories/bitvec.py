"""The theory of fixed-width bitvectors (section 2.2).

Where the paper leverages Z3's bitvector reasoning, this reproduction
bit-blasts to CNF (:mod:`repro.solvers.bitblast`) and refutes with a
DPLL SAT solver — the same refutation discipline an SMT backend uses.

Semantics bridged here: at the program level bitvector operations act
on ordinary non-negative integers (``AND``/``XOR``/``*`` on bytes in
the AES example), so the solver works at an internal width wide enough
that no encoded term can wrap.  Before encoding, every atom is checked
to be *grounded*: a conservative interval analysis over the available
range assumptions must bound it below ``2^width``.  If any term cannot
be bounded the query is declined (sound: "not proved").
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..solvers.backend import resolve_backend
from ..solvers.bitblast import BitBlaster, Bits
from ..solvers.sat import IncrementalSatSolver
from ..tr.objects import BVExpr, LinExpr, Obj
from ..tr.props import BVProp, LeqZero, Prop, TheoryProp
from .base import Theory, TheoryContext

__all__ = ["BitvectorTheory", "BitvectorContext"]

#: Internal blasting width: wide enough for byte arithmetic (sums and
#: constant products of bytes stay far below 2^24).
DEFAULT_WIDTH = 24


def _mentions_bv(obj: Obj) -> bool:
    if isinstance(obj, BVExpr):
        return True
    if isinstance(obj, LinExpr):
        return any(_mentions_bv(atom) for atom, _ in obj.terms)
    return False


class _Bounds:
    """Upper bounds (exclusive of negativity) gathered from assumptions.

    ``lo[o] = 0`` records ``0 ≤ o``; ``hi[o] = c`` records ``o ≤ c``.
    Only single-atom, unit-coefficient facts feed the table — exactly
    the shape refinement types such as ``Byte`` produce.
    """

    def __init__(self) -> None:
        self.nonneg: set = set()
        self.hi: Dict[Obj, int] = {}

    def absorb(self, atom: LeqZero) -> None:
        expr = atom.expr
        if len(expr.terms) != 1:
            return
        obj, coeff = expr.terms[0]
        if coeff == 1:
            # o + c ≤ 0  ⟹  o ≤ -c
            bound = -expr.const
            if obj not in self.hi or bound < self.hi[obj]:
                self.hi[obj] = bound
        elif coeff == -1:
            # -o + c ≤ 0  ⟹  o ≥ c
            if expr.const >= 0:
                self.nonneg.add(obj)

    def max_value(self, obj: Union[Obj, int]) -> Optional[int]:
        """A conservative upper bound on the integer value of ``obj``.

        ``None`` means "cannot bound" — the query must be declined.
        Requires non-negativity for opaque atoms so that unsigned
        encoding is faithful.
        """
        if isinstance(obj, int):
            return obj if obj >= 0 else None
        if isinstance(obj, LinExpr):
            total = obj.const
            if obj.const < 0:
                return None
            for atom, coeff in obj.terms:
                if coeff < 0:
                    return None
                inner = self.max_value(atom)
                if inner is None:
                    return None
                total += coeff * inner
            return total
        if isinstance(obj, BVExpr):
            args = [self.max_value(a) for a in obj.args]
            if any(a is None for a in args):
                return None
            if obj.op in ("and",):
                return min(a for a in args)  # AND cannot exceed either side
            if obj.op in ("or", "xor"):
                peak = max(args)
                # or/xor of values < 2^k stay < 2^k
                bits = peak.bit_length()
                return (1 << bits) - 1
            if obj.op == "not":
                return (1 << obj.width) - 1
            if obj.op == "add":
                return sum(args)
            if obj.op == "mul":
                out = 1
                for a in args:
                    out *= a
                return out
            if obj.op == "shl":
                base, amount = args
                return base << amount
            if obj.op == "lshr":
                return args[0]
            return None
        # Opaque atom (variable, field reference): needs recorded bounds.
        if obj in self.nonneg and obj in self.hi:
            return self.hi[obj]
        return None


class BitvectorTheory(Theory):
    """Bit-blasting + SAT decision procedure for bitvector atoms.

    The propositional core is picked by the ``solver_backend`` knob:
    CDCL under ``fast``, recursive DPLL under ``legacy``.  ``backend``
    pins a core for this theory instance; ``None`` follows the process
    default at query time.
    """

    name = "bitvectors"

    def __init__(self, width: int = DEFAULT_WIDTH, backend: Optional[str] = None):
        self.width = width
        self.solver_backend = backend

    def config_key(self) -> str:
        # the blasting width decides groundability and the SAT core's
        # budget behaviour decides proved-vs-declined, hence verdicts
        backend = resolve_backend(self.solver_backend)
        return f"{self.name}(width={self.width},backend={backend})"

    def accepts(self, goal: TheoryProp) -> bool:
        # Linear goals are accepted too: when bitvector *facts* are in
        # play (e.g. "the high bit is clear"), a purely linear goal like
        # ``num ≤ 127`` may only be decidable by blasting.  Ungroundable
        # goals are declined cheaply inside :meth:`entails`.
        return isinstance(goal, (BVProp, LeqZero))

    # ------------------------------------------------------------------
    def entails(self, assumptions: Sequence[Prop], goal: TheoryProp) -> bool:
        bounds, lin_assumptions, bv_assumptions = _gather_bounds(assumptions)

        blaster = BitBlaster()
        encoder = _Encoder(blaster, bounds, self.width)

        goal_lit = encoder.encode_prop(goal)
        if goal_lit is None:
            return False  # goal not groundable: decline

        for prop in bv_assumptions:
            lit = encoder.encode_prop(prop)
            if lit is not None:
                blaster.assert_lit(lit)
        for prop in lin_assumptions:
            lit = encoder.encode_prop(prop)
            if lit is not None:
                blaster.assert_lit(lit)

        blaster.assert_lit(-goal_lit)
        return not blaster.check_sat(backend=self.solver_backend)

    def context(self) -> "BitvectorContext":
        return BitvectorContext(self)


def _gather_bounds(
    assumptions: Sequence[Prop],
) -> Tuple["_Bounds", List[LeqZero], List[BVProp]]:
    """Range analysis over the assumptions (with equality propagation)."""
    bounds = _Bounds()
    bv_assumptions: List[BVProp] = []
    lin_assumptions: List[LeqZero] = []
    for prop in assumptions:
        if isinstance(prop, LeqZero):
            bounds.absorb(prop)
            lin_assumptions.append(prop)
        elif isinstance(prop, BVProp):
            bv_assumptions.append(prop)
    # Propagate bounds through equalities: an opaque atom equal to a
    # groundable term inherits its range (iterate for chains).
    for _ in range(len(bv_assumptions) + 1):
        changed = False
        for prop in bv_assumptions:
            if prop.op != "=":
                continue
            for var_side, expr_side in ((prop.lhs, prop.rhs), (prop.rhs, prop.lhs)):
                if isinstance(var_side, (BVExpr, LinExpr)):
                    continue
                if bounds.max_value(var_side) is not None:
                    continue
                peak = bounds.max_value(expr_side)
                if peak is not None:
                    bounds.nonneg.add(var_side)
                    bounds.hi[var_side] = peak
                    changed = True
        if not changed:
            break
    return bounds, lin_assumptions, bv_assumptions


class _Encoder:
    """Encodes objects and atoms against a :class:`BitBlaster`.

    Supports mark/rollback so a speculative encoding (a goal's Tseitin
    clauses) can be retracted: entries cached after :meth:`mark` are
    forgotten by :meth:`release`, keeping the cache consistent with a
    truncated clause list.
    """

    def __init__(self, blaster: BitBlaster, bounds: _Bounds, width: int):
        self.blaster = blaster
        self.bounds = bounds
        self.width = width
        self._cache: Dict[Obj, Optional[Bits]] = {}
        self._order: List[Obj] = []

    def mark(self) -> int:
        return len(self._order)

    def release(self, mark: int) -> None:
        while len(self._order) > mark:
            self._cache.pop(self._order.pop(), None)

    def _fits(self, obj: Union[Obj, int]) -> bool:
        peak = self.bounds.max_value(obj)
        return peak is not None and peak < (1 << self.width)

    def encode_obj(self, obj: Union[Obj, int]) -> Optional[Bits]:
        if isinstance(obj, int):
            if 0 <= obj < (1 << self.width):
                return self.blaster.constant(obj, self.width)
            return None
        if obj in self._cache:
            return self._cache[obj]
        self._cache[obj] = None  # cycle guard
        self._order.append(obj)
        bits = self._encode_obj(obj)
        self._cache[obj] = bits
        return bits

    def _encode_obj(self, obj: Obj) -> Optional[Bits]:
        if isinstance(obj, LinExpr):
            if not self._fits(obj):
                return None
            acc = self.blaster.constant(obj.const, self.width)
            for atom, coeff in obj.terms:
                inner = self.encode_obj(atom)
                if inner is None:
                    return None
                scaled = self.blaster.bv_mul(
                    inner, self.blaster.constant(coeff, self.width)
                )
                acc = self.blaster.bv_add(acc, scaled)
            return acc
        if isinstance(obj, BVExpr):
            if not self._fits(obj):
                return None
            args: List[Bits] = []
            for arg in obj.args:
                encoded = self.encode_obj(arg)
                if encoded is None:
                    return None
                args.append(encoded)
            op = obj.op
            if op == "and":
                return self.blaster.bv_and(*args)
            if op == "or":
                return self.blaster.bv_or(*args)
            if op == "xor":
                return self.blaster.bv_xor(*args)
            if op == "not":
                # Integer-level NOT within the declared width: x ^ (2^w - 1).
                mask = self.blaster.constant((1 << obj.width) - 1, self.width)
                return self.blaster.bv_xor(args[0], mask)
            if op == "add":
                return self.blaster.bv_add(*args)
            if op == "mul":
                return self.blaster.bv_mul(*args)
            if op == "shl":
                amount = obj.args[1]
                if not isinstance(amount, int):
                    return None
                return self.blaster.bv_shl(args[0], amount)
            if op == "lshr":
                amount = obj.args[1]
                if not isinstance(amount, int):
                    return None
                return self.blaster.bv_lshr(args[0], amount)
            return None
        # Opaque atom: encode as a variable, constrained by its bounds.
        if not self._fits(obj):
            return None
        bits = self.blaster.variable(obj, self.width)
        hi = self.bounds.hi.get(obj)
        if hi is not None:
            hi_bits = self.blaster.constant(hi, self.width)
            self.blaster.assert_lit(self.blaster.bv_ule(bits, hi_bits))
        return bits

    def _split_linear(self, expr: LinExpr) -> Optional[Tuple[Bits, Bits]]:
        """Encode ``expr ≤ 0`` as ``pos ≤ᵤ neg`` with both sides ≥ 0.

        Positive-coefficient terms and a positive constant go on the
        left; negated negative-coefficient terms and a negative
        constant (negated) on the right.
        """
        pos: Bits = self.blaster.constant(max(expr.const, 0), self.width)
        neg: Bits = self.blaster.constant(max(-expr.const, 0), self.width)
        pos_peak = max(expr.const, 0)
        neg_peak = max(-expr.const, 0)
        for atom, coeff in expr.terms:
            inner = self.encode_obj(atom)
            if inner is None:
                return None
            peak = self.bounds.max_value(atom)
            if peak is None:
                return None
            scaled = self.blaster.bv_mul(
                inner, self.blaster.constant(abs(coeff), self.width)
            )
            if coeff > 0:
                pos = self.blaster.bv_add(pos, scaled)
                pos_peak += coeff * peak
            else:
                neg = self.blaster.bv_add(neg, scaled)
                neg_peak += -coeff * peak
        if pos_peak >= (1 << self.width) or neg_peak >= (1 << self.width):
            return None
        return pos, neg

    def encode_prop(self, prop: Prop) -> Optional[int]:
        """Encode an atom as a single literal, or ``None`` to decline."""
        if isinstance(prop, LeqZero):
            sides = self._split_linear(prop.expr)
            if sides is None:
                return None
            pos, neg = sides
            return self.blaster.bv_ule(pos, neg)
        if isinstance(prop, BVProp):
            lhs = self.encode_obj(prop.lhs)
            rhs = self.encode_obj(prop.rhs)
            if lhs is None or rhs is None:
                return None
            op = prop.op
            if op == "=":
                return self.blaster.bv_eq(lhs, rhs)
            if op == "≠":
                return -self.blaster.bv_eq(lhs, rhs)
            if op == "≤":
                return self.blaster.bv_ule(lhs, rhs)
            if op == "<":
                return self.blaster.bv_ult(lhs, rhs)
            if op == "≥":
                return self.blaster.bv_ule(rhs, lhs)
            if op == ">":
                return self.blaster.bv_ult(rhs, lhs)
            return None
        return None


class BitvectorContext(TheoryContext):
    """Incremental bitvector context: Γ is bit-blasted once per
    assumption generation, goals ride a push/pop clause stack.

    The batch path re-runs the range analysis and re-encodes every
    assumption for *each* goal.  This context instead keeps a
    persistent :class:`BitBlaster`/encoder pair and an
    :class:`~repro.solvers.sat.IncrementalSatSolver`: assumption
    clauses are asserted once, each goal adds its (conservative
    Tseitin) definition clauses to the shared encoding, and only the
    negated-goal unit lives inside a ``push``/``pop`` bracket.  Any
    change to the assumption set simply drops the encoding, which is
    rebuilt lazily on the next query.
    """

    __slots__ = ("theory", "_frames", "_memo", "_bounds", "_encoded", "_counters")

    def __init__(self, theory: BitvectorTheory) -> None:
        self.theory = theory
        self._frames: List[List[Union[LeqZero, BVProp]]] = [[]]
        self._memo: Dict[TheoryProp, bool] = {}
        #: lazily built range analysis over the current assumptions
        self._bounds: Optional[_Bounds] = None
        #: lazily built (blaster, encoder, solver)
        self._encoded: Optional[list] = None
        #: shared solver-counter dict (``EngineStats.solver_counters``)
        self._counters: Optional[Dict[str, int]] = None

    def bind_counters(self, shared: Optional[Dict[str, int]]) -> None:
        self._counters = shared
        if self._encoded is not None:
            self._encoded[2].bind_counters(shared)

    def push(self) -> None:
        self._frames.append([])

    def pop(self) -> None:
        if len(self._frames) == 1:
            raise IndexError("pop without matching push")
        if self._frames.pop():
            self._memo = {}
            self._bounds = None
            self._encoded = None

    def assert_prop(self, prop: Prop) -> None:
        if isinstance(prop, (LeqZero, BVProp)):
            self._frames[-1].append(prop)
            self._memo = {}
            self._bounds = None
            self._encoded = None

    def _assumptions(self) -> List[Union[LeqZero, BVProp]]:
        return [prop for frame in self._frames for prop in frame]

    def _ensure_bounds(self) -> "_Bounds":
        if self._bounds is None:
            self._bounds = _gather_bounds(self._assumptions())[0]
        return self._bounds

    def _groundable(self, goal: TheoryProp, bounds: "_Bounds") -> bool:
        """Can the goal possibly be encoded under the current bounds?

        A pure range check mirroring the encoder's decline conditions,
        run *before* any clauses exist — ungroundable goals (the common
        case for linear goals falling through from Fourier-Motzkin)
        must not force Γ to be bit-blasted.
        """
        limit = 1 << self.theory.width
        if isinstance(goal, LeqZero):
            pos_peak = max(goal.expr.const, 0)
            neg_peak = max(-goal.expr.const, 0)
            for atom, coeff in goal.expr.terms:
                peak = bounds.max_value(atom)
                if peak is None:
                    return False
                if coeff > 0:
                    pos_peak += coeff * peak
                else:
                    neg_peak += -coeff * peak
            return pos_peak < limit and neg_peak < limit
        if isinstance(goal, BVProp):
            for side in (goal.lhs, goal.rhs):
                peak = bounds.max_value(side)
                if peak is None or peak >= limit:
                    return False
            return True
        return False

    def _ensure_encoded(self) -> list:
        if self._encoded is None:
            assumptions = self._assumptions()
            bounds = self._ensure_bounds()
            blaster = BitBlaster()
            encoder = _Encoder(blaster, bounds, self.theory.width)
            for wanted in (BVProp, LeqZero):
                for prop in assumptions:
                    if isinstance(prop, wanted):
                        lit = encoder.encode_prop(prop)
                        if lit is not None:
                            blaster.assert_lit(lit)
            solver = IncrementalSatSolver(backend=self.theory.solver_backend)
            solver.bind_counters(self._counters)
            solver.add_clauses(blaster.clauses)
            self._encoded = [blaster, encoder, solver]
        return self._encoded

    def entails(self, goal: TheoryProp) -> bool:
        if not isinstance(goal, (BVProp, LeqZero)):
            return False
        cached = self._memo.get(goal)
        if cached is not None:
            return cached
        if not self._groundable(goal, self._ensure_bounds()):
            self._memo[goal] = False  # decline without blasting Γ
            return False
        result = self._decide_encoded(goal)
        self._memo[goal] = result
        return result

    def _speculative_clauses(self, goal: TheoryProp) -> Optional[List[List[int]]]:
        """Encode ``goal`` and return its clause set plus the ¬goal unit.

        The whole goal encoding is speculative: its Tseitin clauses are
        captured and then retracted from the shared blaster and
        encoder, so successive goals never pay for each other's
        clauses.  ``None`` means the goal could not be grounded.
        """
        blaster, encoder, _solver = self._ensure_encoded()
        clause_mark = len(blaster.clauses)
        encoder_mark = encoder.mark()
        goal_lit = encoder.encode_prop(goal)
        extra: Optional[List[List[int]]] = None
        if goal_lit is not None:
            extra = [list(clause) for clause in blaster.clauses[clause_mark:]]
            extra.append([-goal_lit])
        del blaster.clauses[clause_mark:]
        encoder.release(encoder_mark)
        return extra

    def _decide_encoded(self, goal: TheoryProp) -> bool:
        """Refute ``¬goal`` against the shared assumption encoding."""
        extra = self._speculative_clauses(goal)
        if extra is None:
            return False  # goal not groundable after all: decline
        solver = self._encoded[2]
        return not solver.check_many([extra])[0]

    def entails_batch(self, goals: Sequence[TheoryProp]) -> List[bool]:
        """Blast ``[[Γ]]_T`` at most once for the whole batch.

        The range analysis and assumption encoding are shared by every
        goal.  Each undecided goal is speculatively encoded (and its
        Tseitin clauses retracted, so goals never pay for each other),
        then the negated-goal clause sets go to the SAT solver as
        **one** :meth:`IncrementalSatSolver.check_many` call against
        the shared assumption prefix — N goals cost one translation
        plus one multi-probe solver call instead of N translations.
        """
        bounds: Optional[_Bounds] = None
        results: List[bool] = []
        pending: List[Tuple[int, TheoryProp, List[List[int]]]] = []
        for goal in goals:
            if not isinstance(goal, (BVProp, LeqZero)):
                results.append(False)
                continue
            cached = self._memo.get(goal)
            if cached is not None:
                results.append(cached)
                continue
            if bounds is None:
                bounds = self._ensure_bounds()
            if not self._groundable(goal, bounds):
                self._memo[goal] = False  # decline without blasting Γ
                results.append(False)
                continue
            extra = self._speculative_clauses(goal)
            if extra is None:
                self._memo[goal] = False  # not groundable after all
                results.append(False)
            else:
                pending.append((len(results), goal, extra))
                results.append(False)  # patched below
        if pending:
            solver = self._encoded[2]
            answers = solver.check_many([extra for _, _, extra in pending])
            for (position, goal, _), sat in zip(pending, answers):
                verdict = not sat  # refuting ¬goal proves the goal
                self._memo[goal] = verdict
                results[position] = verdict
        return results

    def clone(self) -> "BitvectorContext":
        dup = BitvectorContext.__new__(BitvectorContext)
        dup.theory = self.theory
        dup._frames = [list(frame) for frame in self._frames]
        dup._memo = dict(self._memo)
        # The analysis and encoding are rebuilt lazily on the clone
        # (sharing a blaster between forked contexts would entangle
        # their clause stacks).
        dup._bounds = None
        dup._encoded = None
        dup._counters = self._counters
        return dup
