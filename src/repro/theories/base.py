"""The theory plug-in interface (section 3.4 of the paper).

Integrating a theory T into λRTR requires, per the paper:

1. extending symbolic objects/fields with the terms T speaks about
   (done in :mod:`repro.tr.objects` — linear expressions, bitvector
   terms, the ``len`` field);
2. extending propositions with T's predicates (done in
   :mod:`repro.tr.props` — :class:`~repro.tr.props.LeqZero`,
   :class:`~repro.tr.props.BVProp`);
3. enriching primitive types so the new forms are emitted during type
   checking (done in :mod:`repro.checker.prims`);
4. providing a *sound solver* consulted by the L-Theory proof rule.

This module defines the solver-side contract (step 4): a
:class:`Theory` answers entailment queries ``Γ ⊨_T χ`` given the
theory-relevant propositions the logic extracted from the environment
(the ``[[Γ]]_T`` of the L-Theory rule).
"""

from __future__ import annotations

from typing import Sequence

from ..tr.props import Prop, TheoryProp

__all__ = ["Theory"]


class Theory:
    """A solver-backed theory, consulted by L-Theory.

    Subclasses must be *sound*: :meth:`entails` may only return ``True``
    when the assumptions really entail the goal in the theory's
    intended (integer) semantics.  Returning ``False`` is always safe.
    """

    #: Human-readable theory name, e.g. ``"linear-arithmetic"``.
    name: str = "abstract"

    def accepts(self, goal: TheoryProp) -> bool:
        """Can this theory even attempt to decide ``goal``?"""
        raise NotImplementedError

    def entails(self, assumptions: Sequence[Prop], goal: TheoryProp) -> bool:
        """Does the conjunction of ``assumptions`` entail ``goal``?

        ``assumptions`` is the theory-relevant projection of the
        environment; atoms from *other* theories may appear and must be
        ignored (dropping assumptions is sound).
        """
        raise NotImplementedError
