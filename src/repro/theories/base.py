"""The theory plug-in interface (section 3.4 of the paper).

Integrating a theory T into λRTR requires, per the paper:

1. extending symbolic objects/fields with the terms T speaks about
   (done in :mod:`repro.tr.objects` — linear expressions, bitvector
   terms, the ``len`` field);
2. extending propositions with T's predicates (done in
   :mod:`repro.tr.props` — :class:`~repro.tr.props.LeqZero`,
   :class:`~repro.tr.props.BVProp`);
3. enriching primitive types so the new forms are emitted during type
   checking (done in :mod:`repro.checker.prims`);
4. providing a *sound solver* consulted by the L-Theory proof rule.

This module defines the solver-side contract (step 4): a
:class:`Theory` answers entailment queries ``Γ ⊨_T χ`` given the
theory-relevant propositions the logic extracted from the environment
(the ``[[Γ]]_T`` of the L-Theory rule).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..tr.props import Prop, TheoryProp

__all__ = ["Theory", "TheoryContext", "BatchContext"]


class Theory:
    """A solver-backed theory, consulted by L-Theory.

    Subclasses must be *sound*: :meth:`entails` may only return ``True``
    when the assumptions really entail the goal in the theory's
    intended (integer) semantics.  Returning ``False`` is always safe.
    """

    #: Human-readable theory name, e.g. ``"linear-arithmetic"``.
    name: str = "abstract"

    def config_key(self) -> str:
        """A string covering every parameter that can change a verdict.

        Persistent caches namespace entries by the full engine
        configuration; a theory whose constructor takes
        verdict-affecting parameters (solver widths, work bounds) must
        fold them in here so differently-configured engines never share
        cache entries.
        """
        return self.name

    def accepts(self, goal: TheoryProp) -> bool:
        """Can this theory even attempt to decide ``goal``?"""
        raise NotImplementedError

    def entails(self, assumptions: Sequence[Prop], goal: TheoryProp) -> bool:
        """Does the conjunction of ``assumptions`` entail ``goal``?

        ``assumptions`` is the theory-relevant projection of the
        environment; atoms from *other* theories may appear and must be
        ignored (dropping assumptions is sound).
        """
        raise NotImplementedError

    def entails_batch(
        self, assumptions: Sequence[Prop], goals: Sequence[TheoryProp]
    ) -> List[bool]:
        """Decide several goals under one assumption set, positionally.

        The default simply loops :meth:`entails`; theories whose
        translation work dominates (bit-blasting, constraint
        normalisation) override this to translate ``assumptions`` once
        and reuse it across the whole batch.  Must be answer-equivalent
        to per-goal :meth:`entails` calls.
        """
        return [self.entails(assumptions, goal) for goal in goals]

    def context(self) -> "TheoryContext":
        """A fresh incremental assumption context for this theory.

        The default wraps :meth:`entails` in a :class:`BatchContext`;
        theories with genuinely incremental solvers override this to
        return a context that keeps translated state across queries.
        """
        return BatchContext(self)


class TheoryContext:
    """An SMT-style incremental solver context (``push``/``assert``/``pop``).

    The L-Theory query path used to re-encode the whole of ``[[Γ]]_T``
    on every goal; a context instead *accumulates* assumptions — each
    translated once — and answers any number of goals against them.
    Contexts mirror the discipline of an SMT solver session:

    * :meth:`assert_prop` adds one assumption to the current frame
      (atoms the theory does not accept are ignored — dropping
      assumptions is sound);
    * :meth:`push` / :meth:`pop` bracket speculative assumptions;
    * :meth:`entails` decides a goal under everything asserted;
    * :meth:`clone` forks the context so a child environment can start
      from its parent's already-translated assumption set.

    Soundness contract: like :meth:`Theory.entails`, ``entails`` may
    answer ``True`` only when the asserted assumptions really entail
    the goal; ``False`` ("not proved") is always safe.
    """

    def push(self) -> None:
        raise NotImplementedError

    def pop(self) -> None:
        raise NotImplementedError

    def assert_prop(self, prop: Prop) -> None:
        raise NotImplementedError

    def bind_counters(self, shared: Optional[dict]) -> None:
        """Accumulate solver-core work counters into ``shared``.

        ``shared`` is the engine's ``EngineStats.solver_counters``
        dict; contexts backed by counting solver cores forward it so
        pivots/conflicts/etc. show up in ``--stats``.  The default is a
        no-op — counters are diagnostics, never verdicts.
        """

    def entails(self, goal: TheoryProp) -> bool:
        raise NotImplementedError

    def entails_batch(self, goals: Sequence[TheoryProp]) -> List[bool]:
        """Decide several goals under the asserted assumptions.

        One call per theory session instead of N single-goal
        round-trips: contexts backed by incremental solvers override
        this so per-batch work (assumption flattening, range analysis,
        encoding setup) happens once.  Answers are positional and must
        agree exactly with per-goal :meth:`entails` calls.
        """
        return [self.entails(goal) for goal in goals]

    def clone(self) -> "TheoryContext":
        raise NotImplementedError

    def is_unsat(self) -> bool:
        """Are the asserted assumptions definitely inconsistent?

        ``False`` means "unknown or consistent"; only a definite
        refutation may answer ``True`` (used by Γ ⊢ ff).
        """
        return False


class BatchContext(TheoryContext):
    """Fallback context for theories without an incremental solver.

    Keeps the accepted assumptions in push/pop frames and re-runs the
    theory's batch :meth:`~Theory.entails` per goal, memoising answers
    until the assumption set changes — still a large win over
    re-translating the environment on every query.
    """

    __slots__ = ("theory", "_frames", "_memo")

    def __init__(self, theory: Theory) -> None:
        self.theory = theory
        self._frames: List[List[TheoryProp]] = [[]]
        self._memo: dict = {}

    def push(self) -> None:
        self._frames.append([])

    def pop(self) -> None:
        if len(self._frames) == 1:
            raise IndexError("pop without matching push")
        if self._frames.pop():
            self._memo = {}

    def assert_prop(self, prop: Prop) -> None:
        if isinstance(prop, TheoryProp) and self.theory.accepts(prop):
            self._frames[-1].append(prop)
            self._memo = {}

    def entails(self, goal: TheoryProp) -> bool:
        if not self.theory.accepts(goal):
            return False
        cached = self._memo.get(goal)
        if cached is None:
            assumptions = [prop for frame in self._frames for prop in frame]
            cached = self.theory.entails(assumptions, goal)
            self._memo[goal] = cached
        return cached

    def entails_batch(self, goals: Sequence[TheoryProp]) -> List[bool]:
        """Flatten the assumption frames once for the whole batch."""
        assumptions: Optional[List[TheoryProp]] = None
        results: List[bool] = []
        fresh: List[TheoryProp] = []
        for goal in goals:
            if not self.theory.accepts(goal):
                results.append(False)
                continue
            cached = self._memo.get(goal)
            if cached is None:
                if assumptions is None:
                    assumptions = [p for frame in self._frames for p in frame]
                fresh.append(goal)
                results.append(False)  # placeholder, patched below
            else:
                results.append(cached)
        if fresh:
            answers = self.theory.entails_batch(assumptions, fresh)
            patched = dict(zip(fresh, answers))
            self._memo.update(patched)
            results = [patched.get(goal, res) for goal, res in zip(goals, results)]
        return results

    def clone(self) -> "BatchContext":
        dup = BatchContext(self.theory)
        dup._frames = [list(frame) for frame in self._frames]
        dup._memo = dict(self._memo)
        return dup
