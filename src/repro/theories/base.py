"""The theory plug-in interface (section 3.4 of the paper).

Integrating a theory T into λRTR requires, per the paper:

1. extending symbolic objects/fields with the terms T speaks about
   (done in :mod:`repro.tr.objects` — linear expressions, bitvector
   terms, the ``len`` field);
2. extending propositions with T's predicates (done in
   :mod:`repro.tr.props` — :class:`~repro.tr.props.LeqZero`,
   :class:`~repro.tr.props.BVProp`);
3. enriching primitive types so the new forms are emitted during type
   checking (done in :mod:`repro.checker.prims`);
4. providing a *sound solver* consulted by the L-Theory proof rule.

This module defines the solver-side contract (step 4): a
:class:`Theory` answers entailment queries ``Γ ⊨_T χ`` given the
theory-relevant propositions the logic extracted from the environment
(the ``[[Γ]]_T`` of the L-Theory rule).
"""

from __future__ import annotations

from typing import List, Sequence

from ..tr.props import Prop, TheoryProp

__all__ = ["Theory", "TheoryContext", "BatchContext"]


class Theory:
    """A solver-backed theory, consulted by L-Theory.

    Subclasses must be *sound*: :meth:`entails` may only return ``True``
    when the assumptions really entail the goal in the theory's
    intended (integer) semantics.  Returning ``False`` is always safe.
    """

    #: Human-readable theory name, e.g. ``"linear-arithmetic"``.
    name: str = "abstract"

    def accepts(self, goal: TheoryProp) -> bool:
        """Can this theory even attempt to decide ``goal``?"""
        raise NotImplementedError

    def entails(self, assumptions: Sequence[Prop], goal: TheoryProp) -> bool:
        """Does the conjunction of ``assumptions`` entail ``goal``?

        ``assumptions`` is the theory-relevant projection of the
        environment; atoms from *other* theories may appear and must be
        ignored (dropping assumptions is sound).
        """
        raise NotImplementedError

    def context(self) -> "TheoryContext":
        """A fresh incremental assumption context for this theory.

        The default wraps :meth:`entails` in a :class:`BatchContext`;
        theories with genuinely incremental solvers override this to
        return a context that keeps translated state across queries.
        """
        return BatchContext(self)


class TheoryContext:
    """An SMT-style incremental solver context (``push``/``assert``/``pop``).

    The L-Theory query path used to re-encode the whole of ``[[Γ]]_T``
    on every goal; a context instead *accumulates* assumptions — each
    translated once — and answers any number of goals against them.
    Contexts mirror the discipline of an SMT solver session:

    * :meth:`assert_prop` adds one assumption to the current frame
      (atoms the theory does not accept are ignored — dropping
      assumptions is sound);
    * :meth:`push` / :meth:`pop` bracket speculative assumptions;
    * :meth:`entails` decides a goal under everything asserted;
    * :meth:`clone` forks the context so a child environment can start
      from its parent's already-translated assumption set.

    Soundness contract: like :meth:`Theory.entails`, ``entails`` may
    answer ``True`` only when the asserted assumptions really entail
    the goal; ``False`` ("not proved") is always safe.
    """

    def push(self) -> None:
        raise NotImplementedError

    def pop(self) -> None:
        raise NotImplementedError

    def assert_prop(self, prop: Prop) -> None:
        raise NotImplementedError

    def entails(self, goal: TheoryProp) -> bool:
        raise NotImplementedError

    def clone(self) -> "TheoryContext":
        raise NotImplementedError

    def is_unsat(self) -> bool:
        """Are the asserted assumptions definitely inconsistent?

        ``False`` means "unknown or consistent"; only a definite
        refutation may answer ``True`` (used by Γ ⊢ ff).
        """
        return False


class BatchContext(TheoryContext):
    """Fallback context for theories without an incremental solver.

    Keeps the accepted assumptions in push/pop frames and re-runs the
    theory's batch :meth:`~Theory.entails` per goal, memoising answers
    until the assumption set changes — still a large win over
    re-translating the environment on every query.
    """

    __slots__ = ("theory", "_frames", "_memo")

    def __init__(self, theory: Theory) -> None:
        self.theory = theory
        self._frames: List[List[TheoryProp]] = [[]]
        self._memo: dict = {}

    def push(self) -> None:
        self._frames.append([])

    def pop(self) -> None:
        if len(self._frames) == 1:
            raise IndexError("pop without matching push")
        if self._frames.pop():
            self._memo = {}

    def assert_prop(self, prop: Prop) -> None:
        if isinstance(prop, TheoryProp) and self.theory.accepts(prop):
            self._frames[-1].append(prop)
            self._memo = {}

    def entails(self, goal: TheoryProp) -> bool:
        if not self.theory.accepts(goal):
            return False
        cached = self._memo.get(goal)
        if cached is None:
            assumptions = [prop for frame in self._frames for prop in frame]
            cached = self.theory.entails(assumptions, goal)
            self._memo[goal] = cached
        return cached

    def clone(self) -> "BatchContext":
        dup = BatchContext(self.theory)
        dup._frames = [list(frame) for frame in self._frames]
        dup._memo = dict(self._memo)
        return dup
