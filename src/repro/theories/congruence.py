"""The theory of integer congruences (parity and beyond).

A third theory added by the section 3.4 recipe, realising the paper's
conclusion that "other programs, ranging from fixed-width arithmetic
to theories of regular expressions, can similarly benefit":

1. the proposition grammar gains :class:`~repro.tr.props.Congruence`
   atoms ``o ≡ r (mod m)``;
2. ``even?``/``odd?`` are enriched to emit them as then/else
   propositions (see :mod:`repro.checker.prims`);
3. this module provides the solver consulted by L-Theory.

The decision procedure: assumptions pin residues for atoms (merged by
CRT when several congruences speak about one atom; an inconsistent
merge refutes everything).  A goal about a *linear combination* is
evaluated residue-wise — ``Σ aᵢxᵢ + c (mod m)`` is determined whenever
each ``xᵢ`` has a known residue modulo a multiple of ``m`` — so facts
like "2x is even" come out for free from the linear structure.
"""

from __future__ import annotations

from math import gcd
from typing import Dict, Optional, Sequence, Tuple

from ..tr.objects import LinExpr, Obj
from ..tr.props import Congruence, Prop, TheoryProp
from .base import Theory

__all__ = ["CongruenceTheory", "merge_congruences"]


def merge_congruences(
    first: Tuple[int, int], second: Tuple[int, int]
) -> Optional[Tuple[int, int]]:
    """CRT merge of ``x ≡ r₁ (mod m₁)`` and ``x ≡ r₂ (mod m₂)``.

    Returns the combined ``(modulus, residue)`` or ``None`` when the
    two are inconsistent (``r₁ ≢ r₂ (mod gcd(m₁, m₂))``).
    """
    m1, r1 = first
    m2, r2 = second
    g = gcd(m1, m2)
    if (r1 - r2) % g != 0:
        return None
    lcm = m1 // g * m2
    # Solve x ≡ r1 (mod m1), x ≡ r2 (mod m2) by stepping r1 in m1-strides.
    step = m1
    x = r1
    while x % m2 != r2 % m2:
        x += step
    return lcm, x % lcm


class CongruenceTheory(Theory):
    """Residue reasoning over congruence atoms and linear structure."""

    name = "congruence"

    def accepts(self, goal: TheoryProp) -> bool:
        return isinstance(goal, Congruence)

    def entails(self, assumptions: Sequence[Prop], goal: TheoryProp) -> bool:
        if not isinstance(goal, Congruence):
            return False
        known = self._residues(assumptions)
        if known is None:
            return True  # inconsistent assumptions entail anything
        residue = self._residue_of(goal.obj, goal.modulus, known)
        if residue is None:
            return False
        return residue == goal.residue % goal.modulus

    # ------------------------------------------------------------------
    def _residues(
        self, assumptions: Sequence[Prop]
    ) -> Optional[Dict[Obj, Tuple[int, int]]]:
        """Atom → (modulus, residue); ``None`` marks inconsistency."""
        known: Dict[Obj, Tuple[int, int]] = {}
        for prop in assumptions:
            if not isinstance(prop, Congruence):
                continue
            entry = (prop.modulus, prop.residue % prop.modulus)
            if prop.obj in known:
                merged = merge_congruences(known[prop.obj], entry)
                if merged is None:
                    return None
                known[prop.obj] = merged
            else:
                known[prop.obj] = entry
        return known

    def _residue_of(
        self, obj: Obj, modulus: int, known: Dict[Obj, Tuple[int, int]]
    ) -> Optional[int]:
        """The residue of ``obj`` modulo ``modulus``, if determined."""
        direct = known.get(obj)
        if direct is not None and direct[0] % modulus == 0:
            return direct[1] % modulus
        if isinstance(obj, LinExpr):
            total = obj.const
            for atom, coeff in obj.terms:
                # A coefficient divisible by the modulus contributes 0
                # regardless of the atom's (possibly unknown) residue.
                if coeff % modulus == 0:
                    continue
                inner = self._residue_of(atom, modulus, known)
                if inner is None:
                    return None
                total += coeff * inner
            return total % modulus
        return None
