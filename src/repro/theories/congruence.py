"""The theory of integer congruences (parity and beyond).

A third theory added by the section 3.4 recipe, realising the paper's
conclusion that "other programs, ranging from fixed-width arithmetic
to theories of regular expressions, can similarly benefit":

1. the proposition grammar gains :class:`~repro.tr.props.Congruence`
   atoms ``o ≡ r (mod m)``;
2. ``even?``/``odd?`` are enriched to emit them as then/else
   propositions (see :mod:`repro.checker.prims`);
3. this module provides the solver consulted by L-Theory.

The decision procedure: assumptions pin residues for atoms (merged by
CRT when several congruences speak about one atom; an inconsistent
merge refutes everything).  A goal about a *linear combination* is
evaluated residue-wise — ``Σ aᵢxᵢ + c (mod m)`` is determined whenever
each ``xᵢ`` has a known residue modulo a multiple of ``m`` — so facts
like "2x is even" come out for free from the linear structure.
"""

from __future__ import annotations

from math import gcd
from typing import Dict, List, Optional, Sequence, Tuple

from ..tr.objects import LinExpr, Obj
from ..tr.props import Congruence, Prop, TheoryProp
from .base import Theory, TheoryContext

__all__ = ["CongruenceTheory", "CongruenceContext", "merge_congruences"]


def merge_congruences(
    first: Tuple[int, int], second: Tuple[int, int]
) -> Optional[Tuple[int, int]]:
    """CRT merge of ``x ≡ r₁ (mod m₁)`` and ``x ≡ r₂ (mod m₂)``.

    Returns the combined ``(modulus, residue)`` or ``None`` when the
    two are inconsistent (``r₁ ≢ r₂ (mod gcd(m₁, m₂))``).
    """
    m1, r1 = first
    m2, r2 = second
    g = gcd(m1, m2)
    if (r1 - r2) % g != 0:
        return None
    lcm = m1 // g * m2
    # Solve x ≡ r1 (mod m1), x ≡ r2 (mod m2) by stepping r1 in m1-strides.
    step = m1
    x = r1
    while x % m2 != r2 % m2:
        x += step
    return lcm, x % lcm


class CongruenceTheory(Theory):
    """Residue reasoning over congruence atoms and linear structure."""

    name = "congruence"

    def accepts(self, goal: TheoryProp) -> bool:
        return isinstance(goal, Congruence)

    def entails(self, assumptions: Sequence[Prop], goal: TheoryProp) -> bool:
        if not isinstance(goal, Congruence):
            return False
        known = self._residues(assumptions)
        if known is None:
            return True  # inconsistent assumptions entail anything
        residue = self._residue_of(goal.obj, goal.modulus, known)
        if residue is None:
            return False
        return residue == goal.residue % goal.modulus

    def context(self) -> "CongruenceContext":
        return CongruenceContext(self)

    # ------------------------------------------------------------------
    def _residues(
        self, assumptions: Sequence[Prop]
    ) -> Optional[Dict[Obj, Tuple[int, int]]]:
        """Atom → (modulus, residue); ``None`` marks inconsistency."""
        known: Dict[Obj, Tuple[int, int]] = {}
        for prop in assumptions:
            if not isinstance(prop, Congruence):
                continue
            entry = (prop.modulus, prop.residue % prop.modulus)
            if prop.obj in known:
                merged = merge_congruences(known[prop.obj], entry)
                if merged is None:
                    return None
                known[prop.obj] = merged
            else:
                known[prop.obj] = entry
        return known

    def _residue_of(
        self, obj: Obj, modulus: int, known: Dict[Obj, Tuple[int, int]]
    ) -> Optional[int]:
        """The residue of ``obj`` modulo ``modulus``, if determined."""
        direct = known.get(obj)
        if direct is not None and direct[0] % modulus == 0:
            return direct[1] % modulus
        if isinstance(obj, LinExpr):
            total = obj.const
            for atom, coeff in obj.terms:
                # A coefficient divisible by the modulus contributes 0
                # regardless of the atom's (possibly unknown) residue.
                if coeff % modulus == 0:
                    continue
                inner = self._residue_of(atom, modulus, known)
                if inner is None:
                    return None
                total += coeff * inner
            return total % modulus
        return None


class CongruenceContext(TheoryContext):
    """Incremental residue table with a push/pop undo trail.

    Assertions CRT-merge into a persistent atom → (modulus, residue)
    map; each frame records the entries it overwrote so :meth:`pop`
    restores them exactly.  An inconsistent merge latches the frame's
    inconsistency flag (ex falso: everything is then entailed) until
    the offending frame is popped.
    """

    __slots__ = ("theory", "_known", "_trail", "_inconsistent_level")

    def __init__(self, theory: CongruenceTheory) -> None:
        self.theory = theory
        self._known: Dict[Obj, Tuple[int, int]] = {}
        #: one undo frame per push level: (obj, previous entry or None)
        self._trail: List[List[Tuple[Obj, Optional[Tuple[int, int]]]]] = [[]]
        self._inconsistent_level: Optional[int] = None

    def push(self) -> None:
        self._trail.append([])

    def pop(self) -> None:
        if len(self._trail) == 1:
            raise IndexError("pop without matching push")
        for obj, previous in reversed(self._trail.pop()):
            if previous is None:
                del self._known[obj]
            else:
                self._known[obj] = previous
        if (
            self._inconsistent_level is not None
            and self._inconsistent_level >= len(self._trail)
        ):
            self._inconsistent_level = None

    def assert_prop(self, prop: Prop) -> None:
        if not isinstance(prop, Congruence) or self._inconsistent_level is not None:
            return
        entry = (prop.modulus, prop.residue % prop.modulus)
        previous = self._known.get(prop.obj)
        if previous is not None:
            merged = merge_congruences(previous, entry)
            if merged is None:
                self._inconsistent_level = len(self._trail) - 1
                return
            if merged == previous:
                return
            entry = merged
        self._trail[-1].append((prop.obj, previous))
        self._known[prop.obj] = entry

    def entails(self, goal: TheoryProp) -> bool:
        if not isinstance(goal, Congruence):
            return False
        if self._inconsistent_level is not None:
            return True
        residue = self.theory._residue_of(goal.obj, goal.modulus, self._known)
        if residue is None:
            return False
        return residue == goal.residue % goal.modulus

    def entails_batch(self, goals: Sequence[TheoryProp]) -> List[bool]:
        """Every goal reads the same residue table — one pass, no setup."""
        if self._inconsistent_level is not None:
            return [isinstance(goal, Congruence) for goal in goals]
        residue_of = self.theory._residue_of
        known = self._known
        results: List[bool] = []
        for goal in goals:
            if not isinstance(goal, Congruence):
                results.append(False)
                continue
            residue = residue_of(goal.obj, goal.modulus, known)
            results.append(
                residue is not None and residue == goal.residue % goal.modulus
            )
        return results

    def clone(self) -> "CongruenceContext":
        dup = CongruenceContext.__new__(CongruenceContext)
        dup.theory = self.theory
        dup._known = dict(self._known)
        dup._trail = [list(frame) for frame in self._trail]
        dup._inconsistent_level = self._inconsistent_level
        return dup
