"""The theory of linear integer arithmetic (section 2.1).

Goals and assumptions are :class:`~repro.tr.props.LeqZero` atoms over
canonical linear expressions; non-linear atoms inside the expressions
(field references such as ``(len v)``, bitvector terms, variables) are
treated as opaque integer-valued unknowns.  Entailment is discharged by
:mod:`repro.solvers.linear`, whose ``solver_backend`` knob selects the
incremental dual simplex (``fast``) or the Fourier-Motzkin eliminator
mirroring the lightweight solver the paper describes (``legacy``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..solvers.backend import resolve_backend
from ..solvers.linear import (
    UNSAT,
    Constraint,
    IncrementalConstraintSet,
)
from ..tr.intern import register_clear_hook
from ..tr.objects import LinExpr, Obj
from ..tr.props import LeqZero, Prop, TheoryProp
from .base import Theory, TheoryContext

__all__ = ["LinearArithmeticTheory", "LinArithContext", "constraint_of_leqzero"]


#: translation memo keyed by the atom's intern id (ids are never
#: reused, and the table is dropped with the intern tables)
_CONSTRAINT_MEMO: Dict[int, Constraint] = {}

register_clear_hook(_CONSTRAINT_MEMO.clear)


def constraint_of_leqzero(atom: LeqZero) -> Constraint:
    """Translate ``e ≤ 0`` into the solver's constraint representation."""
    con = _CONSTRAINT_MEMO.get(atom._iid)
    if con is None:
        coeffs: Dict[Obj, int] = {}
        for obj, coeff in atom.expr.terms:
            coeffs[obj] = coeffs.get(obj, 0) + coeff
        con = Constraint.make(coeffs, atom.expr.const)
        if len(_CONSTRAINT_MEMO) >= (1 << 17):
            _CONSTRAINT_MEMO.clear()
        _CONSTRAINT_MEMO[atom._iid] = con
    return con


class LinearArithmeticTheory(Theory):
    """Solver-backed linear integer arithmetic.

    The deciding core is picked by the ``solver_backend`` knob
    (:mod:`repro.solvers.backend`): incremental dual simplex under
    ``fast``, Fourier-Motzkin elimination under ``legacy``.  ``backend``
    may pin a specific core for this theory instance (the differential
    fuzz oracle runs one engine per backend); ``None`` follows the
    process default at query time.
    """

    name = "linear-arithmetic"

    def __init__(
        self, max_constraints: int = 6000, backend: Optional[str] = None
    ):
        self.max_constraints = max_constraints
        self.solver_backend = backend

    def config_key(self) -> str:
        # the work bound and the solver core decide UNKNOWN-vs-UNSAT,
        # hence verdicts — the two backends must never share persistent
        # cache entries.
        backend = resolve_backend(self.solver_backend)
        return (
            f"{self.name}(max_constraints={self.max_constraints},"
            f"backend={backend})"
        )

    def accepts(self, goal: TheoryProp) -> bool:
        return isinstance(goal, LeqZero)

    def entails(self, assumptions: Sequence[Prop], goal: TheoryProp) -> bool:
        if not isinstance(goal, LeqZero):
            return False
        cset = IncrementalConstraintSet(backend=self.solver_backend)
        for prop in assumptions:
            if isinstance(prop, LeqZero):
                cset.add(constraint_of_leqzero(prop))
        return cset.entails(constraint_of_leqzero(goal), self.max_constraints)

    def context(self) -> "LinArithContext":
        return LinArithContext(self)


class LinArithContext(TheoryContext):
    """Incremental linear-arithmetic context.

    Each asserted atom is translated to a solver constraint exactly
    once and kept in an :class:`IncrementalConstraintSet`; goals are
    decided (and memoised) against the accumulated set, so a stable Γ
    pays its translation once across all the goals it is consulted for.
    """

    __slots__ = ("theory", "_set")

    def __init__(self, theory: LinearArithmeticTheory) -> None:
        self.theory = theory
        self._set = IncrementalConstraintSet(backend=theory.solver_backend)

    def push(self) -> None:
        self._set.push()

    def pop(self) -> None:
        self._set.pop()

    def bind_counters(self, shared: Optional[Dict[str, int]]) -> None:
        self._set.bind_counters(shared)

    def assert_prop(self, prop: Prop) -> None:
        if isinstance(prop, LeqZero):
            self._set.add(constraint_of_leqzero(prop))

    def entails(self, goal: TheoryProp) -> bool:
        if not isinstance(goal, LeqZero):
            return False
        return self._set.entails(
            constraint_of_leqzero(goal), self.theory.max_constraints
        )

    def entails_batch(self, goals: Sequence[TheoryProp]) -> List[bool]:
        """One solver consultation for the whole batch.

        Goals are translated up front and handed to
        :meth:`IncrementalConstraintSet.entails_many`, which
        materialises the assumption constraints once for every
        elimination run in the batch.
        """
        linear: List[Tuple[int, Constraint]] = []
        for index, goal in enumerate(goals):
            if isinstance(goal, LeqZero):
                linear.append((index, constraint_of_leqzero(goal)))
        results = [False] * len(goals)
        if linear:
            answers = self._set.entails_many(
                [con for _, con in linear], self.theory.max_constraints
            )
            for (index, _), answer in zip(linear, answers):
                results[index] = answer
        return results

    def is_unsat(self) -> bool:
        return self._set.satisfiable(self.theory.max_constraints) == UNSAT

    def clone(self) -> "LinArithContext":
        dup = LinArithContext.__new__(LinArithContext)
        dup.theory = self.theory
        dup._set = self._set.clone()
        return dup
