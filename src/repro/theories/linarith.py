"""The theory of linear integer arithmetic (section 2.1).

Goals and assumptions are :class:`~repro.tr.props.LeqZero` atoms over
canonical linear expressions; non-linear atoms inside the expressions
(field references such as ``(len v)``, bitvector terms, variables) are
treated as opaque integer-valued unknowns.  Entailment is discharged by
the Fourier-Motzkin backend in :mod:`repro.solvers.linear`, mirroring
the lightweight solver the paper describes.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..solvers.linear import Constraint, fm_entails
from ..tr.objects import LinExpr, Obj
from ..tr.props import LeqZero, Prop, TheoryProp
from .base import Theory

__all__ = ["LinearArithmeticTheory", "constraint_of_leqzero"]


def constraint_of_leqzero(atom: LeqZero) -> Constraint:
    """Translate ``e ≤ 0`` into the solver's constraint representation."""
    coeffs: Dict[Obj, int] = {}
    for obj, coeff in atom.expr.terms:
        coeffs[obj] = coeffs.get(obj, 0) + coeff
    return Constraint.make(coeffs, atom.expr.const)


class LinearArithmeticTheory(Theory):
    """Fourier-Motzkin-backed linear integer arithmetic."""

    name = "linear-arithmetic"

    def __init__(self, max_constraints: int = 6000):
        self.max_constraints = max_constraints

    def accepts(self, goal: TheoryProp) -> bool:
        return isinstance(goal, LeqZero)

    def entails(self, assumptions: Sequence[Prop], goal: TheoryProp) -> bool:
        if not isinstance(goal, LeqZero):
            return False
        constraints: List[Constraint] = []
        for prop in assumptions:
            if isinstance(prop, LeqZero):
                constraints.append(constraint_of_leqzero(prop))
        return fm_entails(constraints, constraint_of_leqzero(goal), self.max_constraints)
