"""Theory plug-ins (§3.4): linear arithmetic, bitvectors, congruences."""

from .base import Theory
from .bitvec import BitvectorTheory
from .congruence import CongruenceTheory
from .linarith import LinearArithmeticTheory
from .registry import TheoryRegistry, default_registry

__all__ = [
    "Theory", "TheoryRegistry", "default_registry",
    "LinearArithmeticTheory", "BitvectorTheory", "CongruenceTheory",
]
