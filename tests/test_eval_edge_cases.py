"""Evaluator edge cases and semantic agreement with the checker's view."""

import pytest

from repro.interp.delta import DELTA, apply_prim
from repro.interp.eval import run_program_text
from repro.interp.values import RacketError, VOID_VALUE
from repro.model.satisfies import eval_obj
from repro.tr.objects import BVExpr, Var


def run(src):
    _defs, results = run_program_text(src)
    return results[-1] if results else None


class TestRemainderModuloSemantics:
    """Racket's remainder truncates toward zero; modulo follows the
    divisor's sign — both must match what the checker's refinements say."""

    @pytest.mark.parametrize(
        "a,b,expected",
        [(7, 3, 1), (-7, 3, -1), (7, -3, 1), (-7, -3, -1)],
    )
    def test_remainder(self, a, b, expected):
        assert apply_prim("remainder", (a, b)) == expected

    @pytest.mark.parametrize(
        "a,b,expected",
        [(7, 3, 1), (-7, 3, 2), (7, -3, -2), (-7, -3, -1)],
    )
    def test_modulo(self, a, b, expected):
        assert apply_prim("modulo", (a, b)) == expected

    @pytest.mark.parametrize(
        "a,b,expected",
        [(7, 2, 3), (-7, 2, -3), (7, -2, -3), (-7, -2, 3)],
    )
    def test_quotient_truncates(self, a, b, expected):
        assert apply_prim("quotient", (a, b)) == expected

    def test_modulo_refinement_agrees_with_runtime(self):
        # the checker's (modulo a b) refinement promises 0 ≤ r < b for b > 0
        for a in range(-20, 20):
            for b in (1, 2, 3, 7):
                r = apply_prim("modulo", (a, b))
                assert 0 <= r < b


class TestBVAgreement:
    """δ's bitwise ops, the BV solver's semantics and eval_obj agree."""

    @pytest.mark.parametrize("a", [0x00, 0x57, 0x80, 0xFF])
    def test_xtime_pipeline(self, a):
        masked_obj = BVExpr("and", (BVExpr("mul", (2, Var("n")), 8), 0xFF), 8)
        via_model = eval_obj({"n": a}, masked_obj)
        via_delta = apply_prim("AND", (apply_prim("*", (2, a)), 0xFF))
        assert via_model == via_delta

    def test_not_matches_model(self):
        via_model = eval_obj({"n": 0x0F}, BVExpr("not", (Var("n"),), 8))
        via_delta = apply_prim("NOT", (0x0F,))
        assert via_model == via_delta


class TestShadowingAndScope:
    def test_inner_binding_shadows(self):
        assert run("(let ([x 1]) (let ([x 2]) x))") == 2

    def test_outer_unchanged_after_inner(self):
        assert run("(let ([x 1]) (let ([ignored (let ([x 2]) x)]) x))") == 1

    def test_parallel_let_sees_outer(self):
        assert run("(let ([x 1]) (let ([x (+ x 1)]) x))") == 2

    def test_closure_captures_binding_not_value_via_set(self):
        assert run(
            """
            (let ([x 1])
              (let ([get (λ () x)])
                (begin (set! x 99) (get))))
            """
        ) == 99

    def test_prims_shadowable_at_runtime(self):
        assert run("(let ([len 5]) len)") == 5


class TestVoidAndUnit:
    def test_when_false_is_void(self):
        assert run("(when (< 2 1) 5)") is VOID_VALUE

    def test_for_returns_void(self):
        assert run("(for ([i (in-range 3)]) i)") is VOID_VALUE

    def test_set_returns_void(self):
        assert run("(let ([x 1]) (set! x 2))") is VOID_VALUE


class TestDeltaTotality:
    def test_all_prims_have_positive_arity_entries(self):
        for name, (arity, fn) in DELTA.items():
            assert arity >= 0, name
            assert callable(fn), name

    def test_type_confusion_is_checked_not_crashy(self):
        # wrong dynamic types raise RacketError, never Python TypeError
        for name, args in [
            ("+", (True, 1)),
            ("len", (5,)),
            ("vec-ref", (5, 0)),
            ("zero?", ("x",)),
        ]:
            with pytest.raises(RacketError):
                apply_prim(name, args)
