"""EngineStats: mergeable across workers, picklable across processes."""

import pickle

from repro.logic.prove import EngineStats, Logic
from repro.checker.check import Checker
from repro.syntax.parser import parse_program

SOURCE = """
(: f : [x : Int] -> [y : Int #:where (>= y x)])
(define (f x) (if (> x 0) x 1))
(f 3)
"""


def _worked_stats() -> EngineStats:
    logic = Logic()
    Checker(logic=logic).check_program(parse_program(SOURCE))
    return logic.stats


class TestMerge:
    def test_counters_add(self):
        first = _worked_stats()
        second = _worked_stats()
        merged = EngineStats().merge(first).merge(second)
        assert merged.prove_calls == first.prove_calls + second.prove_calls
        assert merged.subtype_calls == first.subtype_calls + second.subtype_calls
        assert merged.theory_goals == first.theory_goals + second.theory_goals
        for name in set(first.theory_queries) | set(second.theory_queries):
            assert merged.theory_queries.get(name, 0) == (
                first.theory_queries.get(name, 0)
                + second.theory_queries.get(name, 0)
            )

    def test_merge_returns_self_for_chaining(self):
        stats = EngineStats()
        assert stats.merge(EngineStats()) is stats

    def test_aggregate_hit_rate_is_exact(self):
        # Rates must come out as total-hits / total-calls, not an
        # average of per-worker rates.
        left = EngineStats()
        left.prove_calls, left.prove_hits = 100, 100
        right = EngineStats()
        right.prove_calls, right.prove_hits = 300, 0
        merged = EngineStats().merge(left).merge(right)
        assert merged.prove_hit_rate == 25.0

    def test_merge_does_not_alias_theory_queries(self):
        donor = EngineStats()
        donor.theory_queries["linear-arithmetic"] = 5
        merged = EngineStats().merge(donor)
        merged.theory_queries["linear-arithmetic"] += 1
        assert donor.theory_queries["linear-arithmetic"] == 5


class TestPickle:
    def test_roundtrip_preserves_every_counter(self):
        stats = _worked_stats()
        clone = pickle.loads(pickle.dumps(stats))
        assert clone.as_dict() == stats.as_dict()

    def test_roundtrip_across_protocols(self):
        stats = _worked_stats()
        for protocol in range(2, pickle.HIGHEST_PROTOCOL + 1):
            clone = pickle.loads(pickle.dumps(stats, protocol))
            assert clone.as_dict() == stats.as_dict()

    def test_unpickled_stats_still_merge(self):
        stats = _worked_stats()
        clone = pickle.loads(pickle.dumps(stats))
        merged = EngineStats().merge(clone)
        assert merged.prove_calls == stats.prove_calls
