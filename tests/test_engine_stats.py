"""EngineStats: mergeable across workers, picklable across processes."""

import pickle

from repro.logic.prove import EngineStats, Logic
from repro.checker.check import Checker
from repro.syntax.parser import parse_program

SOURCE = """
(: f : [x : Int] -> [y : Int #:where (>= y x)])
(define (f x) (if (> x 0) x 1))
(f 3)
"""


def _worked_stats(source: str = SOURCE) -> EngineStats:
    logic = Logic()
    Checker(logic=logic).check_program(parse_program(source))
    return logic.stats


def _batched_stats() -> EngineStats:
    """Stats from a workload that includes a conjunction dispatch
    (``theory_batches``) on top of a normal checker run."""
    from repro.logic.env import Env
    from repro.tr.objects import Var, obj_int
    from repro.tr.props import lin_le, make_and

    logic = Logic()
    Checker(logic=logic).check_program(parse_program(SOURCE))
    x = Var("x")
    env = logic.extend(Env(), lin_le(x, obj_int(5)))
    goal = make_and((lin_le(x, obj_int(6)), lin_le(x, obj_int(7))))
    assert logic.proves(env, goal)
    assert logic.stats.theory_batches >= 1
    return logic.stats


class TestMerge:
    def test_counters_add(self):
        first = _worked_stats()
        second = _worked_stats()
        merged = EngineStats().merge(first).merge(second)
        assert merged.prove_calls == first.prove_calls + second.prove_calls
        assert merged.subtype_calls == first.subtype_calls + second.subtype_calls
        assert merged.theory_goals == first.theory_goals + second.theory_goals
        for name in set(first.theory_queries) | set(second.theory_queries):
            assert merged.theory_queries.get(name, 0) == (
                first.theory_queries.get(name, 0)
                + second.theory_queries.get(name, 0)
            )

    def test_merge_returns_self_for_chaining(self):
        stats = EngineStats()
        assert stats.merge(EngineStats()) is stats

    def test_aggregate_hit_rate_is_exact(self):
        # Rates must come out as total-hits / total-calls, not an
        # average of per-worker rates.
        left = EngineStats()
        left.prove_calls, left.prove_hits = 100, 100
        right = EngineStats()
        right.prove_calls, right.prove_hits = 300, 0
        merged = EngineStats().merge(left).merge(right)
        assert merged.prove_hit_rate == 25.0

    def test_merge_does_not_alias_theory_queries(self):
        donor = EngineStats()
        donor.theory_queries["linear-arithmetic"] = 5
        merged = EngineStats().merge(donor)
        merged.theory_queries["linear-arithmetic"] += 1
        assert donor.theory_queries["linear-arithmetic"] == 5


class TestCopyDeltaRoundTrip:
    """The daemon-lane / fork-worker accounting contract.

    A long-lived engine snapshots (``copy``) before a request and
    subtracts (``delta_from``) after; workers pickle their deltas to
    the parent, which merges them.  The round trip must reconstruct
    the totals exactly — including the dict-valued slots
    (``theory_queries``, ``solver_counters``) and the batch counters
    that ``entails_many``/``check_many`` bump once per dispatch.
    """

    def test_copy_then_delta_recovers_increment(self):
        stats = _worked_stats()
        baseline = stats.copy()
        logic2 = Logic()
        Checker(logic=logic2).check_program(parse_program(SOURCE))
        stats.merge(logic2.stats)
        delta = stats.delta_from(baseline)
        assert delta.as_dict() == logic2.stats.as_dict()

    def test_batches_and_solver_counters_survive_fork_merge(self):
        # simulate two fork workers: each works, pickles a delta,
        # and the parent merges — totals must be exact sums
        workers = [_batched_stats(), _worked_stats()]
        shipped = [pickle.loads(pickle.dumps(w)) for w in workers]
        merged = EngineStats()
        for delta in shipped:
            merged.merge(delta)
        assert merged.theory_batches == sum(w.theory_batches for w in workers)
        assert merged.theory_goals == sum(w.theory_goals for w in workers)
        names = set()
        for w in workers:
            names |= set(w.solver_counters)
        for name in names:
            assert merged.solver_counters.get(name, 0) == sum(
                w.solver_counters.get(name, 0) for w in workers
            )

    def test_solver_counters_populated_by_fast_backend(self):
        stats = _batched_stats()
        assert stats.theory_batches > 0
        # the refinement in SOURCE forces linear-arithmetic work, so
        # the fast core's counters must have flowed through the facade
        assert any(
            name.startswith(("simplex.", "cdcl.", "sat."))
            for name in stats.solver_counters
        ), stats.solver_counters

    def test_delta_from_drops_zero_dict_entries(self):
        stats = _worked_stats()
        delta = stats.delta_from(stats.copy())
        assert delta.solver_counters == {}
        assert delta.theory_queries == {}
        assert delta.theory_batches == 0

    def test_copy_does_not_alias_solver_counters(self):
        stats = _worked_stats()
        snapshot = stats.copy()
        for name in list(stats.solver_counters):
            stats.solver_counters[name] += 7
        delta = stats.delta_from(snapshot)
        assert all(count == 7 for count in delta.solver_counters.values())


class TestPickle:
    def test_roundtrip_preserves_every_counter(self):
        stats = _worked_stats()
        clone = pickle.loads(pickle.dumps(stats))
        assert clone.as_dict() == stats.as_dict()

    def test_roundtrip_across_protocols(self):
        stats = _worked_stats()
        for protocol in range(2, pickle.HIGHEST_PROTOCOL + 1):
            clone = pickle.loads(pickle.dumps(stats, protocol))
            assert clone.as_dict() == stats.as_dict()

    def test_unpickled_stats_still_merge(self):
        stats = _worked_stats()
        clone = pickle.loads(pickle.dumps(stats))
        merged = EngineStats().merge(clone)
        assert merged.prove_calls == stats.prove_calls
