"""Mutation scenarios (section 4.2): set! and the cache-size incident."""

import pytest

from repro.checker.check import check_program_text
from repro.checker.errors import CheckError


def checks(src):
    check_program_text(src)
    return True


def fails(src):
    with pytest.raises(CheckError):
        check_program_text(src)
    return True


class TestSetBang:
    def test_well_typed_assignment(self):
        assert checks(
            """
            (define counter 0)
            (: bump : Int -> Void)
            (define (bump by) (set! counter (+ counter by)))
            """
        )

    def test_ill_typed_assignment_rejected(self):
        assert fails(
            """
            (define counter 0)
            (: oops : Int -> Void)
            (define (oops x) (set! counter #t))
            """
        )

    def test_refined_declared_type_is_invariant(self):
        # set! must respect the annotated refinement
        assert fails(
            """
            (: size Nat)
            (define size 5)
            (: shrink : Int -> Void)
            (define (shrink x) (set! size -1))
            """
        )

    def test_refined_declared_type_allows_good_writes(self):
        assert checks(
            """
            (: size Nat)
            (define size 5)
            (: grow : Nat -> Void)
            (define (grow x) (set! size (+ size x)))
            """
        )

    def test_local_mutation(self):
        assert checks(
            """
            (: f : Int -> Int)
            (define (f x)
              (let ([acc 0])
                (begin (set! acc (+ acc x)) acc)))
            """
        )


class TestNoOccurrenceInfoFromMutables:
    def test_cache_size_incident(self):
        """The math-library bug: a test on a mutable cache proves nothing."""
        assert fails(
            """
            (define cache-size 10)
            (: lookup : (Vecof Int) Int -> Int)
            (define (lookup v n)
              (set! cache-size 5)
              (if (and (<= 0 n) (< n cache-size) (= cache-size (len v)))
                  (safe-vec-ref v n)
                  0))
            """
        )

    def test_immutable_version_verifies(self):
        assert checks(
            """
            (define cache-size 10)
            (: lookup : (Vecof Int) Int -> Int)
            (define (lookup v n)
              (if (and (<= 0 n) (< n cache-size) (= cache-size (len v)))
                  (safe-vec-ref v n)
                  0))
            """
        )

    def test_mutated_parameter_gives_no_occurrence_info(self):
        assert fails(
            """
            (: f : (U Int Bool) -> Int)
            (define (f x)
              (if (int? x)
                  (begin (set! x #t) x)
                  0))
            """
        )

    def test_mutable_type_test_not_narrowing(self):
        assert fails(
            """
            (: f : (U Int Bool) -> Int)
            (define (f x)
              (begin
                (set! x x)
                (if (int? x) x 0)))
            """
        )

    def test_vector_contents_mutable_length_not(self):
        # vec-set! does not invalidate length facts
        assert checks(
            """
            (: f : (Vecof Int) Int -> Int)
            (define (f v i)
              (if (and (<= 0 i) (< i (len v)))
                  (begin
                    (safe-vec-set! v i 0)
                    (safe-vec-ref v i))
                  0))
            """
        )
