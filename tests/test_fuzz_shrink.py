"""Shrinker regression tests for the PR 7 bug batch.

RTR-001 and RTR-002 from the catalog (``repro.study.bugs``): the
multi-clause ``let`` spine that could never lose a binding, and the
atom-replacement oscillation that burned the whole check budget.
"""

from repro.checker.errors import CheckError
from repro.fuzz.shrink import shrink
from repro.syntax.parser import parse_program


def _checks_ok(source: str) -> bool:
    """Candidate parses and checks — the shape real predicates have."""
    from repro.checker.check import Checker
    from repro.logic.prove import Logic

    try:
        Checker(logic=Logic()).check_program(parse_program(source))
    except (SyntaxError, CheckError, RecursionError):
        return False
    return True


# ----------------------------------------------------------------------
# RTR-001: multi-clause let binding lists must be reducible
# ----------------------------------------------------------------------
def test_let_binding_list_drops_unused_clauses():
    source = "(define x (let ([a 1] [b 2] [c 3]) a))"

    def predicate(candidate: str) -> bool:
        # "still fails": parses, checks, and still binds a to 1
        return _checks_ok(candidate) and "(a 1)" in candidate

    shrunk = shrink(source, predicate)
    # the unused b/c clauses must be gone — before the drop-one-clause
    # move existed, the binding list was irreducible
    assert "(b 2)" not in shrunk
    assert "(c 3)" not in shrunk
    assert "(a 1)" in shrunk


def test_clause_drop_preserves_parseability_discipline():
    # a clause list inside a real checkable program shrinks to the
    # minimal failing spine, never to an unparseable fragment
    source = "(define y (let ([p 5] [q 6] [r 7]) (+ p q)))"

    def predicate(candidate: str) -> bool:
        return (
            _checks_ok(candidate)
            and "(p 5)" in candidate
            and "(q 6)" in candidate
        )

    shrunk = shrink(source, predicate)
    assert "(r 7)" not in shrunk
    assert _checks_ok(shrunk)


# ----------------------------------------------------------------------
# RTR-002: atom replacement is monotone (no 0 <-> 1 oscillation)
# ----------------------------------------------------------------------
def test_atom_replacement_terminates_without_oscillation():
    source = "(define x (+ 1 2))\n(define y (+ 3 4))"
    checks = 0

    def always_fails(candidate: str) -> bool:
        nonlocal checks
        checks += 1
        return True

    shrunk = shrink(source, always_fails, max_checks=400)
    # maximal shrinking pressure converges in a handful of checks; the
    # oscillating shrinker burned all 400 flipping 0 <-> 1
    assert checks < 50
    # and lands on the bottom of the atom ranking
    assert shrunk == "(define y 0)\n"


def test_atoms_only_move_down_the_simplicity_ranking():
    # predicate holds for any candidate containing a literal — the
    # oscillation trap: 0 and 1 both satisfy it at every position
    source = "(define z (+ 1 1))"
    seen = []

    def predicate(candidate: str) -> bool:
        seen.append(candidate)
        return "define" in candidate

    shrunk = shrink(source, predicate, max_checks=100)
    assert len(seen) < 30
    # no candidate may ever be revisited (a cycle would revisit)
    assert len(seen) == len(set(seen))
    assert shrunk in ("(define z 0)\n", "0\n")
