"""Tests for the theory plug-in layer (section 3.4)."""

from repro.theories.base import Theory
from repro.theories.bitvec import BitvectorTheory
from repro.theories.linarith import LinearArithmeticTheory, constraint_of_leqzero
from repro.theories.registry import TheoryRegistry, default_registry
from repro.tr.objects import BVExpr, Var, obj_int
from repro.tr.props import BVProp, LeqZero, lin_eq, lin_le, lin_lt

x, y, num = Var("x"), Var("y"), Var("num")


def _byte_bounds(var):
    return [lin_le(obj_int(0), var), lin_le(var, obj_int(255))]


class TestLinearTheory:
    def setup_method(self):
        self.theory = LinearArithmeticTheory()

    def test_accepts_linear_atoms(self):
        assert self.theory.accepts(lin_le(x, obj_int(3)))
        assert not self.theory.accepts(BVProp("=", x, y, 8))

    def test_entails_transitivity(self):
        assumptions = [lin_le(x, y), lin_le(y, obj_int(10))]
        assert self.theory.entails(assumptions, lin_le(x, obj_int(10)))

    def test_does_not_over_entail(self):
        assumptions = [lin_le(x, y)]
        assert not self.theory.entails(assumptions, lin_le(y, x))

    def test_ignores_foreign_atoms(self):
        assumptions = [BVProp("=", x, y, 8), lin_le(x, obj_int(3))]
        assert self.theory.entails(assumptions, lin_le(x, obj_int(5)))

    def test_constraint_translation_merges_coefficients(self):
        atom = lin_le(x, obj_int(3))
        assert isinstance(atom, LeqZero)
        constraint = constraint_of_leqzero(atom)
        assert constraint.const == -3

    def test_equality_both_directions(self):
        assumptions = list(lin_eq(x, y).conjuncts)
        assert self.theory.entails(assumptions, lin_le(x, y))
        assert self.theory.entails(assumptions, lin_le(y, x))


class TestBitvectorTheory:
    def setup_method(self):
        self.theory = BitvectorTheory()

    def test_and_upper_bound(self):
        masked = BVExpr("and", (num, 0x0F), 8)
        goal = lin_le(masked, obj_int(15))
        assert self.theory.entails(_byte_bounds(num), goal)

    def test_and_not_too_tight(self):
        masked = BVExpr("and", (num, 0x0F), 8)
        goal = lin_le(masked, obj_int(14))
        assert not self.theory.entails(_byte_bounds(num), goal)

    def test_xor_bound(self):
        xored = BVExpr("xor", (BVExpr("and", (num, 0xFF), 8), 0x1B), 8)
        goal = lin_le(xored, obj_int(255))
        assert self.theory.entails(_byte_bounds(num), goal)

    def test_declines_unbounded_vars(self):
        masked = BVExpr("and", (num, 0x0F), 8)
        # no bounds on num: must decline (sound "not proved")
        assert not self.theory.entails([], lin_le(masked, obj_int(15)))

    def test_equality_assumption_used(self):
        n = Var("n")
        bound_fact = BVProp("=", n, BVExpr("and", (num, 0x7F), 8), 8)
        goal = lin_le(n, obj_int(127))
        assert self.theory.entails(_byte_bounds(num) + [bound_fact], goal)

    def test_high_bit_clear_reasoning(self):
        fact = BVProp("=", obj_int(0), BVExpr("and", (num, 0x80), 8), 8)
        goal = lin_le(num, obj_int(127))
        assert self.theory.entails(_byte_bounds(num) + [fact], goal)

    def test_shift_amount_must_be_literal(self):
        shifted = BVExpr("shl", (num, Var("k")), 8)
        goal = lin_le(shifted, obj_int(255))
        assert not self.theory.entails(_byte_bounds(num), goal)


class TestRegistry:
    def test_default_registry_theories(self):
        registry = default_registry()
        names = {t.name for t in registry.theories}
        # the paper's two theories plus the congruence extension
        assert names == {"linear-arithmetic", "bitvectors", "congruence"}

    def test_entails_tries_in_order(self):
        registry = default_registry()
        assert registry.entails([lin_le(x, obj_int(3))], lin_le(x, obj_int(5)))

    def test_falls_through_to_bitvectors(self):
        registry = default_registry()
        fact = BVProp("=", obj_int(0), BVExpr("and", (num, 0x80), 8), 8)
        goal = lin_le(num, obj_int(127))
        assert registry.entails(_byte_bounds(num) + [fact], goal)

    def test_custom_theory_registration(self):
        class YesTheory(Theory):
            name = "yes"

            def accepts(self, goal):
                return True

            def entails(self, assumptions, goal):
                return True

        registry = TheoryRegistry()
        assert not registry.entails([], lin_le(x, obj_int(0)))
        registry.register(YesTheory())
        assert registry.entails([], lin_le(x, obj_int(0)))
