"""Link and anchor integrity for the documentation suite.

Every relative link in `README.md`, `ARCHITECTURE.md` and `docs/*.md`
must point at a file that exists, and every `#fragment` must match a
real heading in the target document (GitHub anchor rules).  The CI
``docs-smoke`` job runs this module together with
``tests/test_examples.py``, so documentation cannot merge broken.
"""

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent

DOCUMENTS = sorted(
    [ROOT / "README.md", ROOT / "ARCHITECTURE.md"]
    + list((ROOT / "docs").glob("*.md"))
)

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^(#{1,6})\s+(.*)$", re.MULTILINE)
_CODE_FENCE = re.compile(r"```.*?```", re.DOTALL)


def _github_anchor(heading: str) -> str:
    """GitHub's heading → anchor slug (the subset our docs use)."""
    text = heading.strip().lower()
    text = re.sub(r"`([^`]*)`", r"\1", text)          # strip code spans
    text = re.sub(r"[^\w\- ]", "", text)               # drop punctuation
    return text.replace(" ", "-")


def _anchors(document: Path):
    text = _CODE_FENCE.sub("", document.read_text())
    return {_github_anchor(match.group(2)) for match in _HEADING.finditer(text)}


def _links(document: Path):
    text = _CODE_FENCE.sub("", document.read_text())
    for match in _LINK.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        yield target


def test_documents_exist():
    assert len(DOCUMENTS) >= 5  # README, ARCHITECTURE, 3 docs/*.md
    names = {d.name for d in DOCUMENTS}
    assert {"TUTORIAL.md", "RULES.md", "SERVER.md"} <= names


@pytest.mark.parametrize("document", DOCUMENTS, ids=lambda p: p.name)
def test_relative_links_resolve(document):
    broken = []
    for target in _links(document):
        path_part, _, fragment = target.partition("#")
        if path_part:
            resolved = (document.parent / path_part).resolve()
            if not resolved.exists():
                broken.append(f"{target} (missing file)")
                continue
        else:
            resolved = document
        if fragment:
            if resolved.is_dir() or resolved.suffix != ".md":
                continue
            if fragment not in _anchors(resolved):
                broken.append(f"{target} (no such anchor in {resolved.name})")
    assert not broken, f"{document.name}: broken links: {broken}"


def test_docs_are_cross_linked_from_the_front_doors():
    """README and ARCHITECTURE must link the whole docs suite."""
    for front in ("README.md", "ARCHITECTURE.md"):
        text = (ROOT / front).read_text()
        for target in ("docs/TUTORIAL.md", "docs/RULES.md", "docs/SERVER.md"):
            assert target in text, f"{front} does not link {target}"


def test_tutorial_snippets_name_their_examples():
    """Tutorial sections cite the runnable example they lift from."""
    tutorial = (ROOT / "docs" / "TUTORIAL.md").read_text()
    for example in (ROOT / "examples").glob("*.py"):
        if example.name == "case_study_mini.py":
            continue  # covered by README's table, not a tutorial section
        assert example.name in tutorial, (
            f"docs/TUTORIAL.md never cites examples/{example.name}"
        )
