"""Tests for hybrid environments: snapshots, canonicalisation, caching."""

from repro.logic.env import Env
from repro.logic.prove import Logic
from repro.tr.objects import (
    FST,
    LEN,
    SND,
    Var,
    lin_add,
    obj_field,
    obj_int,
    obj_pair,
)
from repro.tr.props import IsType, lin_le, lin_lt, make_alias
from repro.tr.types import BOOL, INT, Vec, make_union

LOGIC = Logic()

x, y, v, w = Var("x"), Var("y"), Var("v"), Var("w")


class TestSnapshotIsolation:
    def test_extension_does_not_mutate_parent(self):
        env = Env()
        child = LOGIC.extend(env, IsType(x, INT))
        assert env.types == {}
        assert child.types != {}

    def test_sibling_branches_independent(self):
        base = LOGIC.extend(Env(), IsType(x, make_union([INT, BOOL])))
        then_env = LOGIC.extend(base, IsType(x, INT))
        else_env = LOGIC.extend(base, IsType(x, BOOL))
        assert LOGIC.proves(then_env, IsType(x, INT))
        assert not LOGIC.proves(then_env, IsType(x, BOOL))
        assert LOGIC.proves(else_env, IsType(x, BOOL))
        assert not LOGIC.proves(else_env, IsType(x, INT))

    def test_alias_isolation(self):
        base = Env()
        child = LOGIC.extend(base, make_alias(x, y))
        assert child.aliases.same_class(x, y)
        assert not base.aliases.same_class(x, y)

    def test_theory_fact_isolation(self):
        base = LOGIC.extend(Env(), IsType(x, INT))
        child = LOGIC.extend(base, lin_le(x, obj_int(5)))
        assert LOGIC.proves(child, lin_le(x, obj_int(10)))
        assert not LOGIC.proves(base, lin_le(x, obj_int(10)))


class TestCanonicalisation:
    def test_canon_plain_var(self):
        env = LOGIC.extend(Env(), make_alias(x, y))
        assert env.canon_obj(x) == env.canon_obj(y)

    def test_canon_recurses_into_fields(self):
        env = LOGIC.extend(Env(), IsType(v, Vec(INT)))
        env = LOGIC.extend(env, make_alias(w, v))
        assert env.canon_obj(obj_field(LEN, w)) == env.canon_obj(obj_field(LEN, v))

    def test_canon_recurses_into_linexprs(self):
        env = LOGIC.extend(Env(), IsType(x, INT))
        env = LOGIC.extend(env, IsType(y, INT))
        env = LOGIC.extend(env, make_alias(x, y))
        left = env.canon_obj(lin_add(x, obj_int(1)))
        right = env.canon_obj(lin_add(y, obj_int(1)))
        assert left == right

    def test_canon_pairs(self):
        env = LOGIC.extend(Env(), make_alias(x, y))
        assert env.canon_obj(obj_pair(x, obj_int(1))) == env.canon_obj(
            obj_pair(y, obj_int(1))
        )

    def test_representative_prefers_field_ref(self):
        env = LOGIC.extend(Env(), IsType(v, Vec(INT)))
        env = LOGIC.extend(env, make_alias(Var("end"), obj_field(LEN, v)))
        assert env.canon_obj(Var("end")) == obj_field(LEN, v)


class TestFactPropagationAcrossAliases:
    def test_facts_recanonicalised_after_union(self):
        # a fact about `end` recorded BEFORE the alias is still usable after
        env = LOGIC.extend(Env(), IsType(v, Vec(INT)))
        env = LOGIC.extend(env, IsType(Var("end"), INT))
        env = LOGIC.extend(env, IsType(Var("i"), INT))
        env = LOGIC.extend(env, lin_lt(Var("i"), Var("end")))
        env = LOGIC.extend(env, make_alias(Var("end"), obj_field(LEN, v)))
        assert LOGIC.proves(env, lin_lt(Var("i"), obj_field(LEN, v)))

    def test_type_info_merges_on_union(self):
        env = LOGIC.extend(Env(), IsType(x, make_union([INT, BOOL])))
        env = LOGIC.extend(env, IsType(y, INT))
        env = LOGIC.extend(env, make_alias(x, y))
        assert LOGIC.proves(env, IsType(x, INT))

    def test_contradictory_aliases_detected(self):
        from repro.tr.props import FF
        from repro.tr.types import STR

        env = LOGIC.extend(Env(), IsType(x, INT))
        env = LOGIC.extend(env, IsType(y, STR))
        env = LOGIC.extend(env, make_alias(x, y))
        assert LOGIC.proves(env, FF)


class TestTheoryCache:
    def test_cache_built_lazily_and_reused(self):
        env = LOGIC.extend(Env(), IsType(x, INT))
        env = LOGIC.extend(env, lin_le(x, obj_int(5)))
        assert env._theory_cache is None
        first = LOGIC.theory_assumptions(env)
        assert env._theory_cache is not None
        assert LOGIC.theory_assumptions(env) is first

    def test_cache_not_shared_across_snapshots(self):
        env = LOGIC.extend(Env(), lin_le(x, obj_int(5)))
        LOGIC.theory_assumptions(env)
        child = LOGIC.extend(env, lin_le(y, obj_int(3)))
        assert len(LOGIC.theory_assumptions(child)) > len(
            LOGIC.theory_assumptions(env)
        )
