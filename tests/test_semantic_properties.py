"""Semantic soundness of the metafunctions, via the model relation.

These properties tie Figure 5/7 to Figure 8's models:

* subtyping soundness — τ <: σ implies every value of τ inhabits σ;
* restrict soundness  — v ∈ τ ∧ v ∈ σ implies v ∈ restrict(τ, σ);
* remove soundness    — v ∈ τ ∧ v ∉ σ implies v ∈ remove(τ, σ);
* overlap soundness   — a common inhabitant implies overlap(τ, σ).
"""

from hypothesis import given, settings, strategies as st

from repro.interp.values import PairV, VOID_VALUE
from repro.logic.env import Env
from repro.logic.prove import Logic
from repro.logic.update import overlap, remove, restrict
from repro.model.satisfies import value_has_type
from repro.tr.parse import BYTE, NAT, POS
from repro.tr.types import (
    BOOL,
    FALSE,
    INT,
    STR,
    TOP,
    TRUE,
    VOID,
    Pair,
    Vec,
    make_union,
)

LOGIC = Logic()
ENV = Env()


def _subtype(a, b):
    return LOGIC.subtype(ENV, a, b)


_base_types = st.sampled_from([INT, BOOL, TRUE, FALSE, STR, VOID, TOP, NAT, BYTE, POS])
_types = st.recursive(
    _base_types,
    lambda inner: st.one_of(
        st.builds(Pair, inner, inner),
        st.builds(Vec, inner),
        st.builds(lambda ts: make_union(ts), st.lists(inner, min_size=1, max_size=3)),
    ),
    max_leaves=5,
)

_values = st.recursive(
    st.one_of(
        st.integers(-300, 300),
        st.booleans(),
        st.text(max_size=3),
        st.just(VOID_VALUE),
    ),
    lambda inner: st.one_of(
        st.builds(PairV, inner, inner),
        st.lists(inner, max_size=3),
    ),
    max_leaves=5,
)


@settings(max_examples=120, deadline=None)
@given(_values, _types, _types)
def test_subtyping_sound_wrt_models(value, sub_ty, sup_ty):
    if _subtype(sub_ty, sup_ty) and value_has_type(value, sub_ty):
        assert value_has_type(value, sup_ty)


@settings(max_examples=120, deadline=None)
@given(_values, _types, _types)
def test_restrict_sound_wrt_models(value, ty, by):
    if value_has_type(value, ty) and value_has_type(value, by):
        assert value_has_type(value, restrict(ty, by, _subtype))


@settings(max_examples=120, deadline=None)
@given(_values, _types, _types)
def test_remove_sound_wrt_models(value, ty, what):
    if value_has_type(value, ty) and not value_has_type(value, what):
        assert value_has_type(value, remove(ty, what, _subtype))


@settings(max_examples=120, deadline=None)
@given(_values, _types, _types)
def test_overlap_sound_wrt_models(value, left, right):
    if value_has_type(value, left) and value_has_type(value, right):
        assert overlap(left, right)


@settings(max_examples=80, deadline=None)
@given(_values, _types)
def test_restrict_by_self_preserves_membership(value, ty):
    if value_has_type(value, ty):
        assert value_has_type(value, restrict(ty, ty, _subtype))


@settings(max_examples=80, deadline=None)
@given(_values, _types)
def test_remove_disjoint_preserves_membership(value, ty):
    if value_has_type(value, ty) and not value_has_type(value, STR):
        if not isinstance(value, str):
            assert value_has_type(value, remove(ty, STR, _subtype))
