"""Tests for symbolic objects (Figure 2 + theory extensions)."""

import pytest
from hypothesis import given, strategies as st

from repro.tr.objects import (
    FST,
    LEN,
    NULL,
    SND,
    BVExpr,
    FieldRef,
    LinExpr,
    PairObj,
    Var,
    lin_add,
    lin_of,
    lin_scale,
    lin_sub,
    obj_field,
    obj_free_vars,
    obj_int,
    obj_pair,
    obj_subst,
)


class TestConstruction:
    def test_int_literal_is_constant_linexpr(self):
        obj = obj_int(5)
        assert isinstance(obj, LinExpr)
        assert obj.is_constant()
        assert obj.constant_value() == 5

    def test_field_of_pair_normalizes_fst(self):
        assert obj_field(FST, obj_pair(Var("a"), Var("b"))) == Var("a")

    def test_field_of_pair_normalizes_snd(self):
        assert obj_field(SND, obj_pair(Var("a"), Var("b"))) == Var("b")

    def test_len_of_pair_does_not_normalize(self):
        obj = obj_field(LEN, Var("v"))
        assert isinstance(obj, FieldRef)

    def test_field_of_null_is_null(self):
        assert obj_field(FST, NULL).is_null()

    def test_bad_field_rejected(self):
        with pytest.raises(ValueError):
            FieldRef("third", Var("p"))


class TestLinearArithmetic:
    def test_add_constants(self):
        assert lin_add(obj_int(2), obj_int(3)) == obj_int(5)

    def test_add_collects_coefficients(self):
        x = Var("x")
        total = lin_add(x, x)
        assert isinstance(total, LinExpr)
        assert total.terms == ((x, 2),)

    def test_cancellation_gives_constant(self):
        x = Var("x")
        assert lin_sub(x, x) == obj_int(0)

    def test_single_unit_term_collapses_to_atom(self):
        x = Var("x")
        assert lin_add(x, obj_int(0)) == x

    def test_scale_zero(self):
        assert lin_scale(0, Var("x")) == obj_int(0)

    def test_scale_distributes(self):
        x, y = Var("x"), Var("y")
        expr = lin_scale(3, lin_add(x, y))
        assert lin_of(expr).terms == ((x, 3), (y, 3))

    def test_null_propagates_add(self):
        assert lin_add(NULL, Var("x")).is_null()

    def test_null_propagates_scale(self):
        assert lin_scale(2, NULL).is_null()

    def test_canonical_order_is_stable(self):
        x, y = Var("x"), Var("y")
        assert lin_add(x, y) == lin_add(y, x)

    def test_field_atoms_participate(self):
        length = obj_field(LEN, Var("v"))
        expr = lin_sub(length, obj_int(1))
        assert lin_of(expr).const == -1
        assert lin_of(expr).terms == ((length, 1),)


class TestFreeVars:
    def test_var(self):
        assert obj_free_vars(Var("x")) == {"x"}

    def test_null(self):
        assert obj_free_vars(NULL) == frozenset()

    def test_field_chain(self):
        assert obj_free_vars(obj_field(FST, obj_field(SND, Var("p")))) == {"p"}

    def test_linexpr(self):
        expr = lin_add(Var("x"), lin_scale(2, Var("y")))
        assert obj_free_vars(expr) == {"x", "y"}

    def test_bvexpr(self):
        expr = BVExpr("and", (Var("a"), 255), 8)
        assert obj_free_vars(expr) == {"a"}

    def test_pair(self):
        assert obj_free_vars(obj_pair(Var("a"), Var("b"))) == {"a", "b"}


class TestSubstitution:
    def test_var_hit(self):
        assert obj_subst(Var("x"), {"x": Var("y")}) == Var("y")

    def test_var_miss(self):
        assert obj_subst(Var("x"), {"y": Var("z")}) == Var("x")

    def test_field_normalizes_after_subst(self):
        obj = obj_field(FST, Var("p"))
        result = obj_subst(obj, {"p": obj_pair(Var("a"), Var("b"))})
        assert result == Var("a")

    def test_null_kills_enclosing_field(self):
        obj = obj_field(LEN, Var("v"))
        assert obj_subst(obj, {"v": NULL}).is_null()

    def test_null_kills_linexpr(self):
        expr = lin_add(Var("x"), obj_int(1))
        assert obj_subst(expr, {"x": NULL}).is_null()

    def test_linexpr_splices_linearly(self):
        expr = lin_scale(2, Var("x"))  # 2x
        result = obj_subst(expr, {"x": lin_add(Var("y"), obj_int(3))})
        lin = lin_of(result)
        assert lin.const == 6
        assert lin.terms == ((Var("y"), 2),)

    def test_bv_args_substituted(self):
        expr = BVExpr("xor", (Var("a"), 27), 8)
        result = obj_subst(expr, {"a": Var("b")})
        assert result == BVExpr("xor", (Var("b"), 27), 8)

    def test_null_kills_bv(self):
        expr = BVExpr("xor", (Var("a"), 27), 8)
        assert obj_subst(expr, {"a": NULL}).is_null()

    def test_pair_null_kills(self):
        assert obj_subst(obj_pair(Var("a"), Var("b")), {"a": NULL}).is_null()


_names = st.sampled_from(["x", "y", "z", "w"])
_coeffs = st.integers(-5, 5)


@given(st.lists(st.tuples(_names, _coeffs), max_size=6), st.integers(-100, 100))
def test_linexpr_canonical_form_sums_coefficients(pairs, const):
    acc = obj_int(const)
    expected = {}
    for name, coeff in pairs:
        acc = lin_add(acc, lin_scale(coeff, Var(name)))
        expected[name] = expected.get(name, 0) + coeff
    lin = lin_of(acc)
    assert lin.const == const
    assert dict((a.name, c) for a, c in lin.terms) == {
        n: c for n, c in expected.items() if c != 0
    }


@given(st.lists(st.tuples(_names, _coeffs), max_size=5), st.integers(-20, 20))
def test_substitution_is_evaluation_homomorphism(pairs, const):
    """Substituting integer constants = evaluating the linear form."""
    acc = obj_int(const)
    for name, coeff in pairs:
        acc = lin_add(acc, lin_scale(coeff, Var(name)))
    assignment = {"x": 3, "y": -2, "z": 7, "w": 0}
    substituted = obj_subst(acc, {n: obj_int(v) for n, v in assignment.items()})
    expected = const + sum(coeff * assignment[name] for name, coeff in pairs)
    assert substituted == obj_int(expected)
