"""Tests for the model relation (Figure 8's ⊨) on concrete values."""

from repro.interp.values import PairV, PrimV, VOID_VALUE
from repro.model.satisfies import eval_obj, satisfies, value_has_type
from repro.tr.objects import (
    BVExpr,
    FST,
    LEN,
    SND,
    Var,
    lin_add,
    lin_scale,
    obj_field,
    obj_int,
    obj_pair,
)
from repro.tr.parse import BYTE, NAT
from repro.tr.props import (
    FF,
    TT,
    IsType,
    NotType,
    lin_eq,
    lin_le,
    make_alias,
    make_and,
    make_or,
)
from repro.tr.types import (
    BOOL,
    FALSE,
    INT,
    STR,
    TOP,
    TRUE,
    VOID,
    Pair,
    Refine,
    Union,
    Vec,
    make_union,
)


class TestValueHasType:
    def test_integers(self):
        assert value_has_type(5, INT)
        assert not value_has_type(True, INT)  # bools are not ints
        assert not value_has_type("x", INT)

    def test_booleans(self):
        assert value_has_type(True, TRUE)
        assert value_has_type(False, FALSE)
        assert value_has_type(True, BOOL)
        assert not value_has_type(False, TRUE)

    def test_top(self):
        for value in (5, True, "s", [1], PairV(1, 2), VOID_VALUE):
            assert value_has_type(value, TOP)

    def test_void(self):
        assert value_has_type(VOID_VALUE, VOID)
        assert not value_has_type(5, VOID)

    def test_pairs(self):
        assert value_has_type(PairV(1, True), Pair(INT, TRUE))
        assert not value_has_type(PairV(1, 2), Pair(INT, STR))

    def test_vectors(self):
        assert value_has_type([1, 2, 3], Vec(INT))
        assert not value_has_type([1, True], Vec(INT))
        assert value_has_type([], Vec(INT))

    def test_unions(self):
        assert value_has_type(5, make_union([INT, STR]))
        assert not value_has_type(True, make_union([INT, STR]))

    def test_procedures(self):
        from repro.tr.types import Fun
        from repro.tr.results import true_result

        fn_ty = Fun((("x", INT),), true_result(INT))
        assert value_has_type(PrimV("+"), fn_ty)
        assert not value_has_type(5, fn_ty)

    def test_refinements(self):
        assert value_has_type(5, NAT)
        assert not value_has_type(-1, NAT)
        assert value_has_type(255, BYTE)
        assert not value_has_type(256, BYTE)

    def test_dependent_refinement_with_rho(self):
        # {z : Int | z ≥ x} with x = 3
        ty = Refine("z", INT, lin_le(Var("x"), Var("z")))
        assert value_has_type(5, ty, {"x": 3})
        assert not value_has_type(2, ty, {"x": 3})


class TestEvalObj:
    def test_var(self):
        assert eval_obj({"x": 5}, Var("x")) == 5

    def test_missing_var(self):
        assert eval_obj({}, Var("x")) is None

    def test_fields(self):
        rho = {"p": PairV(1, 2), "v": [1, 2, 3]}
        assert eval_obj(rho, obj_field(FST, Var("p"))) == 1
        assert eval_obj(rho, obj_field(SND, Var("p"))) == 2
        assert eval_obj(rho, obj_field(LEN, Var("v"))) == 3

    def test_linexpr(self):
        rho = {"x": 4, "y": 2}
        expr = lin_add(lin_scale(3, Var("x")), Var("y"))  # 3x + y
        assert eval_obj(rho, expr) == 14

    def test_pair_obj(self):
        assert eval_obj({"a": 1, "b": 2}, obj_pair(Var("a"), Var("b"))) == PairV(1, 2)

    def test_bv_semantics(self):
        rho = {"n": 0x57}
        doubled = BVExpr("mul", (2, Var("n")), 8)
        masked = BVExpr("and", (doubled, 0xFF), 8)
        assert eval_obj(rho, masked) == (2 * 0x57) & 0xFF

    def test_bv_not(self):
        assert eval_obj({"n": 0x0F}, BVExpr("not", (Var("n"),), 8)) == 0xF0


class TestSatisfies:
    def test_trivial(self):
        assert satisfies({}, TT)
        assert not satisfies({}, FF)

    def test_type_props(self):
        assert satisfies({"x": 5}, IsType(Var("x"), INT))
        assert satisfies({"x": True}, NotType(Var("x"), INT))
        assert not satisfies({"x": True}, IsType(Var("x"), INT))

    def test_connectives(self):
        p = IsType(Var("x"), INT)
        q = IsType(Var("x"), STR)
        assert satisfies({"x": 5}, make_or([p, q]))
        assert not satisfies({"x": 5}, make_and([p, q]))

    def test_theory_props(self):
        assert satisfies({"x": 3}, lin_le(Var("x"), obj_int(5)))
        assert not satisfies({"x": 9}, lin_le(Var("x"), obj_int(5)))

    def test_alias(self):
        assert satisfies({"x": 5, "y": 5}, make_alias(Var("x"), Var("y")))
        assert not satisfies({"x": 5, "y": 6}, make_alias(Var("x"), Var("y")))

    def test_unknown_objects_vacuous(self):
        # propositions about terms outside the model constrain nothing
        assert satisfies({}, lin_le(Var("ghost"), obj_int(0)))

    def test_vector_length_fact(self):
        rho = {"v": [1, 2, 3], "i": 2}
        from repro.tr.props import lin_lt

        assert satisfies(rho, lin_lt(Var("i"), obj_field(LEN, Var("v"))))
        assert not satisfies(rho, lin_lt(obj_int(5), obj_field(LEN, Var("v"))))
