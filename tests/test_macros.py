"""Tests for the macro expander (section 4.4 forms)."""

import pytest

from repro.sexp.printer import write_sexp
from repro.sexp.reader import Symbol, read
from repro.syntax.macros import MacroError, expand, expand_body


def x(text):
    return expand(read(text))


def _flat(sexp):
    return write_sexp(sexp)


class TestConditionals:
    def test_cond_to_nested_ifs(self):
        out = _flat(x("(cond [(a) 1] [(b) 2] [else 3])"))
        assert out.count("(if ") == 2
        assert "else" not in out

    def test_cond_without_else_gives_void(self):
        out = _flat(x("(cond [(a) 1])"))
        assert "(void)" in out

    def test_when(self):
        out = _flat(x("(when t 1)"))
        assert out == "(if t 1 (void))"

    def test_unless(self):
        out = _flat(x("(unless t 1)"))
        assert out == "(if t (void) 1)"

    def test_and_two(self):
        assert _flat(x("(and a b)")) == "(if a b #f)"

    def test_and_empty(self):
        assert x("(and)") is True

    def test_or_binds_once(self):
        out = _flat(x("(or a b)"))
        assert out.startswith("(let1 (or%")
        assert "#f" not in out or True

    def test_or_empty(self):
        assert x("(or)") is False


class TestBindings:
    def test_let_multi_bindings_nest(self):
        out = _flat(x("(let ([a 1] [b 2]) (+ a b))"))
        assert out.count("(let1 ") == 2

    def test_let_star(self):
        out = _flat(x("(let* ([a 1] [b a]) b)"))
        assert out.count("(let1 ") == 2

    def test_named_let_becomes_letrec(self):
        out = x("(let loop ([i 0]) (loop (+ i 1)))")
        assert out[0] == Symbol("letrec")

    def test_named_let_with_annotation(self):
        out = x("(let loop ([i : Nat 0]) i)")
        bindings = out[1]
        lam = bindings[0][1]
        # annotated parameter survives: [i : Nat]
        assert lam[1][0][1] == Symbol(":")

    def test_begin_sequences_with_lets(self):
        out = _flat(x("(begin a b c)"))
        assert out.count("(let1 (ignore%") == 2

    def test_internal_define(self):
        out = _flat(expand(expand_body([read("(define i pos)"), read("(f i)")])))
        assert out.startswith("(let1 (i pos)")

    def test_body_ending_with_define_rejected(self):
        with pytest.raises(MacroError):
            expand_body([read("(define i pos)")])


class TestLowering:
    def test_variadic_plus(self):
        assert _flat(x("(+ a b c)")) == "(+ (+ a b) c)"

    def test_chained_comparison(self):
        out = _flat(x("(< -1 i (len vs))"))
        assert "(if (< -1 i)" in out
        # the middle operand is an atom: no extra binding
        assert "cmp%" not in out

    def test_chained_comparison_binds_compound_middle(self):
        out = _flat(x("(< 0 (f x) 10)"))
        assert "cmp%" in out


class TestForLoops:
    def test_for_sum_shape(self):
        out = _flat(x("(for/sum ([i (in-range (len A))]) (vec-ref A i))"))
        assert "letrec" in out
        assert "loop%" in out
        assert "(< pos%" in out
        assert "(let1 (i pos%" in out  # the (define i pos) residue

    def test_for_sum_reverse_uses_greater(self):
        out = _flat(x("(for/sum ([i (in-range 10 0 -1)]) i)"))
        assert "(> pos%" in out

    def test_for_fold(self):
        out = _flat(x("(for/fold ([acc 0]) ([i (in-range n)]) (+ acc i))"))
        assert "letrec" in out
        assert "acc" in out

    def test_plain_for_returns_void(self):
        out = _flat(x("(for ([i (in-range n)]) (f i))"))
        assert "(void)" in out

    def test_nonliteral_step_rejected(self):
        with pytest.raises(MacroError):
            x("(for/sum ([i (in-range 0 10 k)]) i)")

    def test_unsupported_sequence_rejected(self):
        with pytest.raises(MacroError):
            x("(for/sum ([i (in-list xs)]) i)")


class TestVecMatch:
    def test_vec_match_guards_with_length(self):
        out = _flat(x("(vec-match v [(a b c) (+ a (+ b c))] [else 0])"))
        assert "(= (len vec%" in out
        assert out.count("(vec-ref ") == 3

    def test_vec_match_needs_else(self):
        with pytest.raises(MacroError):
            x("(vec-match v [(a b) a] [other 0])")


class TestTypePositionsUntouched:
    def test_annotation_form_untouched(self):
        form = read("(: f : [x : Int #:where (and (<= 0 x) (< x 10))] -> Int)")
        assert expand(form) == form

    def test_ann_type_untouched(self):
        out = x("(ann (and a b) (Refine [x : Int] (and (<= 0 x))))")
        assert _flat(out[2]) == "(Refine (x : Int) (and (<= 0 x)))"

    def test_lambda_params_untouched(self):
        out = x("(λ ([x : (Refine [i : Int] (and (<= 0 i)))]) x)")
        assert "and" in _flat(out[1])

    def test_struct_untouched(self):
        form = read("(struct P (x y))")
        assert expand(form) == form


class TestIdempotence:
    @pytest.mark.parametrize(
        "text",
        [
            "(cond [(a) 1] [else 2])",
            "(for/sum ([i (in-range n)]) i)",
            "(let ([a 1] [b 2]) (and a b))",
            "(vec-match v [(a b) a] [else 0])",
        ],
    )
    def test_double_expansion_stable(self, text):
        once = expand(read(text))
        assert expand(once) == once
