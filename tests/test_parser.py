"""Tests for the surface parser: α-renaming, annotations, special forms."""

import pytest

from repro.syntax.ast import (
    AnnE,
    AppE,
    BoolE,
    FstE,
    IfE,
    IntE,
    LamE,
    LetE,
    LetRecE,
    PairE,
    PrimE,
    SndE,
    StrE,
    StructRefE,
    VarE,
    VecE,
)
from repro.syntax.parser import ParseError, parse_expr_text, parse_program
from repro.tr.types import INT, Fun, Vec


class TestAtoms:
    def test_int(self):
        assert parse_expr_text("42") == IntE(42)

    def test_bool(self):
        assert parse_expr_text("#t") == BoolE(True)

    def test_string(self):
        assert parse_expr_text('"hi"') == StrE("hi")

    def test_prim_reference(self):
        assert parse_expr_text("+") == PrimE("+")

    def test_prim_alias_resolution(self):
        assert parse_expr_text("vector-length") == PrimE("len")
        assert parse_expr_text("bitwise-and") == PrimE("AND")

    def test_unbound_identifier_rejected(self):
        with pytest.raises(ParseError):
            parse_expr_text("mystery")


class TestCompound:
    def test_application(self):
        expr = parse_expr_text("(+ 1 2)")
        assert expr == AppE(PrimE("+"), (IntE(1), IntE(2)))

    def test_if(self):
        expr = parse_expr_text("(if #t 1 2)")
        assert isinstance(expr, IfE)

    def test_if_arity_enforced(self):
        with pytest.raises(ParseError):
            parse_expr_text("(if #t 1)")

    def test_cons_fst_snd(self):
        expr = parse_expr_text("(fst (cons 1 2))")
        assert isinstance(expr, FstE)
        assert isinstance(expr.pair, PairE)

    def test_car_cdr_aliases(self):
        assert isinstance(parse_expr_text("(car (cons 1 2))"), FstE)
        assert isinstance(parse_expr_text("(cdr (cons 1 2))"), SndE)

    def test_vector_literal(self):
        expr = parse_expr_text("(vector 1 2 3)")
        assert isinstance(expr, VecE)
        assert len(expr.elems) == 3

    def test_annotated_lambda(self):
        expr = parse_expr_text("(λ ([x : Int]) x)")
        assert isinstance(expr, LamE)
        assert expr.params[0][1] == INT

    def test_unannotated_lambda(self):
        expr = parse_expr_text("(λ (x) x)")
        assert expr.params[0][1] is None

    def test_ascription(self):
        expr = parse_expr_text("(ann 1 Int)")
        assert expr == AnnE(IntE(1), INT)

    def test_error_becomes_prim(self):
        expr = parse_expr_text('(error "boom")')
        assert expr == AppE(PrimE("error"), (StrE("boom"),))

    def test_let_via_macro(self):
        expr = parse_expr_text("(let ([x 1]) x)")
        assert isinstance(expr, LetE)
        assert expr.body == VarE(expr.name)


class TestAlphaRenaming:
    def test_shadowing_gets_unique_names(self):
        expr = parse_expr_text("(λ ([x : Int]) (let ([x (+ x 1)]) x))")
        outer = expr.params[0][0]
        let = expr.body
        assert isinstance(let, LetE)
        assert let.name != outer
        assert let.body == VarE(let.name)
        # the RHS references the outer binding
        assert VarE(outer) in let.rhs.args

    def test_distinct_lambdas_distinct_names(self):
        prog = parse_program("(define (f x) x) (define (g x) x)")
        f_param = prog.defines[0].expr.params[0][0]
        g_param = prog.defines[1].expr.params[0][0]
        assert f_param != g_param

    def test_prims_shadowable(self):
        expr = parse_expr_text("(let ([len 5]) len)")
        assert isinstance(expr.body, VarE)


class TestPrograms:
    def test_define_function_shorthand(self):
        prog = parse_program("(define (id x) x)")
        assert prog.defines[0].name == "id"
        assert isinstance(prog.defines[0].expr, LamE)

    def test_annotation_attaches(self):
        prog = parse_program("(: f : Int -> Int) (define (f x) x)")
        assert isinstance(prog.defines[0].annotation, Fun)

    def test_plain_annotation_form(self):
        prog = parse_program("(: v (Vecof Int)) (define v (vector 1 2))")
        assert prog.defines[0].annotation == Vec(INT)

    def test_body_expressions(self):
        prog = parse_program("(define (f x) x) (f 1) (f 2)")
        assert len(prog.body) == 2

    def test_mutual_recursion_in_scope(self):
        prog = parse_program(
            """
            (: even-ish : Int -> Bool)
            (define (even-ish n) (if (= n 0) #t (odd-ish (- n 1))))
            (: odd-ish : Int -> Bool)
            (define (odd-ish n) (if (= n 0) #f (even-ish (- n 1))))
            """
        )
        assert len(prog.defines) == 2

    def test_require_provide_ignored(self):
        prog = parse_program("(require racket/fixnum) (provide f) (define (f x) x)")
        assert len(prog.defines) == 1

    def test_struct_accessor_parses_to_structref(self):
        prog = parse_program(
            "(struct P (size)) (define (f p) (P-size p))"
        )
        body = prog.defines[0].expr.body
        assert isinstance(body, StructRefE)
        assert body.field_name == "size"

    def test_set_of_unbound_rejected(self):
        with pytest.raises(ParseError):
            parse_program("(define (f x) (set! q 1))")

    def test_letrec_binding_must_be_lambda(self):
        with pytest.raises(ParseError):
            parse_program("(define (f x) (letrec ([g 5]) g))")


class TestMacroIntegration:
    def test_for_sum_parses_to_letrec(self):
        prog = parse_program(
            "(define (f v) (for/sum ([i (in-range (len v))]) (vec-ref v i)))"
        )
        body = prog.defines[0].expr.body
        # (let (start ...) (let (end ...) ((letrec ...) start 0)))
        assert isinstance(body, LetE)

    def test_named_let_annotations_survive(self):
        prog = parse_program(
            "(define (f v) (let loop ([i : Nat 0]) (if (= i 5) i (loop (+ i 1)))))"
        )
        letrec = prog.defines[0].expr.body
        assert isinstance(letrec, LetRecE)
        lam = letrec.bindings[0][2]
        assert lam.params[0][1] is not None  # Nat annotation kept
