"""Tests for the S-expression reader and printer."""

import pytest
from hypothesis import given, strategies as st

from repro.sexp.printer import pretty_sexp, write_sexp
from repro.sexp.reader import ReaderError, Symbol, read, read_all


class TestReaderAtoms:
    def test_integer(self):
        assert read("42") == 42

    def test_negative_integer(self):
        assert read("-7") == -7

    def test_true(self):
        assert read("#t") is True

    def test_true_long(self):
        assert read("#true") is True

    def test_false(self):
        assert read("#f") is False

    def test_hex_literal(self):
        assert read("#x1b") == 0x1B

    def test_hex_uppercase(self):
        assert read("#xFF") == 255

    def test_binary_literal(self):
        assert read("#b1010") == 10

    def test_symbol(self):
        assert read("foo") == Symbol("foo")

    def test_symbol_with_punctuation(self):
        assert read("vec-set!") == Symbol("vec-set!")

    def test_keyword_symbol(self):
        assert read("#:where") == Symbol("#:where")

    def test_string(self):
        assert read('"hello"') == "hello"

    def test_string_with_escapes(self):
        assert read(r'"a\nb\"c"') == 'a\nb"c'

    def test_unicode_symbols(self):
        assert read("∧") == Symbol("∧")
        assert read("λ") == Symbol("λ")


class TestReaderLists:
    def test_empty_list(self):
        assert read("()") == []

    def test_flat_list(self):
        assert read("(+ 1 2)") == [Symbol("+"), 1, 2]

    def test_nested(self):
        assert read("(a (b c) d)") == [
            Symbol("a"),
            [Symbol("b"), Symbol("c")],
            Symbol("d"),
        ]

    def test_brackets_are_lists(self):
        assert read("[x : Int]") == [Symbol("x"), Symbol(":"), Symbol("Int")]

    def test_mixed_brackets(self):
        assert read("(f [x 1])") == [Symbol("f"), [Symbol("x"), 1]]

    def test_quote_sugar(self):
        assert read("'x") == [Symbol("quote"), Symbol("x")]

    def test_line_comment(self):
        assert read("(a ; comment\n b)") == [Symbol("a"), Symbol("b")]

    def test_block_comment(self):
        assert read("(a #| hi |# b)") == [Symbol("a"), Symbol("b")]

    def test_nested_block_comment(self):
        assert read("(a #| x #| y |# z |# b)") == [Symbol("a"), Symbol("b")]

    def test_read_all(self):
        assert read_all("1 2 3") == [1, 2, 3]

    def test_read_all_empty(self):
        assert read_all("  ; nothing\n") == []


class TestReaderErrors:
    def test_unclosed(self):
        with pytest.raises(ReaderError):
            read("(a b")

    def test_mismatched(self):
        with pytest.raises(ReaderError):
            read("(a]")

    def test_trailing(self):
        with pytest.raises(ReaderError):
            read("a b")

    def test_stray_closer(self):
        with pytest.raises(ReaderError):
            read(")")

    def test_unterminated_string(self):
        with pytest.raises(ReaderError):
            read('"abc')

    def test_empty_input(self):
        with pytest.raises(ReaderError):
            read("   ")

    def test_error_location(self):
        with pytest.raises(ReaderError) as exc:
            read("(a\n   ")
        assert exc.value.line == 1

    def test_bad_hex(self):
        with pytest.raises(ReaderError):
            read("#xZZ")


class TestPrinter:
    def test_atoms(self):
        assert write_sexp(42) == "42"
        assert write_sexp(True) == "#t"
        assert write_sexp(False) == "#f"
        assert write_sexp(Symbol("foo")) == "foo"
        assert write_sexp("hi") == '"hi"'

    def test_list(self):
        assert write_sexp([Symbol("+"), 1, 2]) == "(+ 1 2)"

    def test_string_escaping(self):
        assert read(write_sexp('a"b\nc')) == 'a"b\nc'

    def test_pretty_short_stays_flat(self):
        assert "\n" not in pretty_sexp([Symbol("+"), 1, 2])

    def test_pretty_long_wraps(self):
        datum = [Symbol("define")] + [Symbol(f"very-long-name-{i}") for i in range(20)]
        assert "\n" in pretty_sexp(datum, width=40)


_atoms = st.one_of(
    st.integers(-10**6, 10**6),
    st.booleans(),
    st.text(
        alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd")),
        min_size=0,
        max_size=8,
    ),
    st.builds(
        Symbol,
        st.text(alphabet="abcdefghijklmnop-?!*<>=", min_size=1, max_size=10).filter(
            lambda s: not _reads_as_number(s)
        ),
    ),
)


def _reads_as_number(text: str) -> bool:
    try:
        int(text)
        return True
    except ValueError:
        return False


_sexps = st.recursive(_atoms, lambda inner: st.lists(inner, max_size=5), max_leaves=25)


@given(_sexps)
def test_print_read_roundtrip(datum):
    assert read(write_sexp(datum)) == datum


@given(_sexps)
def test_pretty_read_roundtrip(datum):
    assert read(pretty_sexp(datum, width=30)) == datum
