"""The ``fuzz --solver-oracle`` backend differential.

The pinned-corpus test is the CI contract from the solver-cores PR:
over the frozen (seed, count) corpus, the fast cores (dual simplex /
CDCL) and the legacy references (Fourier-Motzkin / DPLL) must produce
identical checker verdicts on every generated program.  The remaining
tests pin the wiring: divergences are detected, reported with both
verdicts, routed through the shrinker, and stamped into the digest.
"""

import pytest

from repro.fuzz import FuzzConfig, run_fuzz
from repro.fuzz.gen import generate_program
from repro.fuzz.oracles import (
    check_verdict,
    refinement_blind_factory,
    run_program_oracles,
    solver_oracle_factories,
)
from repro.fuzz.runner import violation_predicate

PINNED_SEED = 2016
PINNED_COUNT = 200


class TestPinnedCorpus:
    @pytest.mark.slow
    def test_backends_agree_on_pinned_corpus(self):
        report = run_fuzz(
            FuzzConfig(
                seed=PINNED_SEED,
                count=PINNED_COUNT,
                mutants=False,
                solver_oracle=True,
            )
        )
        solver = [v for v in report.violations if v.oracle == "solver"]
        assert not solver, "\n".join(v.describe() for v in solver)
        assert report.accepted == report.programs == PINNED_COUNT

    def test_solver_oracle_flag_changes_digest(self):
        base = FuzzConfig(seed=1, count=3, mutants=False, shrink_failures=False)
        with_oracle = FuzzConfig(
            seed=1, count=3, mutants=False, shrink_failures=False,
            solver_oracle=True,
        )
        assert run_fuzz(base).digest() != run_fuzz(with_oracle).digest()


class TestDivergenceDetection:
    def test_identical_factories_never_diverge(self):
        spec = generate_program(PINNED_SEED, 0)
        outcome = run_program_oracles(
            spec,
            include_mutants=False,
            solver_factories=(refinement_blind_factory, refinement_blind_factory),
        )
        assert not [v for v in outcome.violations if v.oracle == "solver"]

    def test_real_factories_never_self_diverge(self):
        factories = solver_oracle_factories()
        for index in range(10):
            spec = generate_program(PINNED_SEED, index)
            outcome = run_program_oracles(
                spec, include_mutants=False, solver_factories=factories
            )
            assert not [v for v in outcome.violations if v.oracle == "solver"]

    def test_solver_violation_message_carries_both_verdicts(self):
        spec = generate_program(PINNED_SEED, 0)
        # force a divergence by pairing a sound and an unsound engine
        from repro.fuzz.oracles import fresh_checker_factory

        diverging = None
        for index in range(PINNED_COUNT):
            candidate = generate_program(PINNED_SEED, index)
            for mutant in candidate.mutants:
                if check_verdict(
                    mutant.source, refinement_blind_factory
                ) != check_verdict(mutant.source, fresh_checker_factory):
                    diverging = mutant.source
                    break
            if diverging:
                break
        assert diverging is not None, "no blind-vs-sound divergence found"
        import dataclasses

        spec = dataclasses.replace(
            spec, source=diverging, mutants=()
        )
        outcome = run_program_oracles(
            spec,
            include_mutants=False,
            solver_factories=(refinement_blind_factory, fresh_checker_factory),
        )
        solver = [v for v in outcome.violations if v.oracle == "solver"]
        assert len(solver) == 1
        assert "fast=" in solver[0].message and "legacy=" in solver[0].message
        assert solver[0].kind == "backend-divergence"


class TestShrinkerIntegration:
    def test_solver_predicate_is_sharp(self):
        # a well-typed program where the real backends agree: the
        # predicate must say "no longer fails" so shrinking stops
        import dataclasses

        spec = generate_program(PINNED_SEED, 0)
        violation_like = _solver_violation(spec.source)
        predicate = violation_predicate(violation_like, None)
        assert predicate is not None
        assert predicate(spec.source) is False

    def test_solver_predicate_fires_on_garbage(self):
        # unparseable text rejects identically under both backends —
        # the predicate must not count that as a divergence either
        violation_like = _solver_violation("(((")
        predicate = violation_predicate(violation_like, None)
        assert predicate("(((") is False


def _solver_violation(source):
    from repro.fuzz.oracles import Violation

    return Violation(
        oracle="solver",
        program=0,
        seed=0,
        kind="backend-divergence",
        message="fast=accept legacy=reject:CheckError",
        source=source,
    )
