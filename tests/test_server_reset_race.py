"""RTR-004 (survived-audit): resets racing an in-flight check stream.

The seam under audit: a ``reset`` from one connection interleaved with
another connection's farm-style ``check_text`` stream.  The claimed
protections are the single engine lane (reset is serialized against
every in-flight request) and the epoch guard (stale sessions drop
their module stores and rebuild leases before serving again).  The
stress below hammers that seam from both sides and asserts the
invariant the daemon is built on: verdicts under a reset storm are
bit-identical to a reset-free run.

The multi-lane daemon widens the seam — the reset may be served by a
*different* lane than the check stream, with convergence through the
server epoch — so the whole stress runs at both one lane and several.
"""

import threading

import pytest

from repro.fuzz import generate_program
from repro.logic.prove import Logic
from repro.server import CheckingServer, Client, ServerConfig

pytestmark = pytest.mark.slow

SEED = 77
PROGRAMS = 24


@pytest.fixture(params=[1, 4], ids=["lanes1", "lanes4"])
def server(tmp_path, request):
    daemon = CheckingServer(
        ServerConfig(socket_path=str(tmp_path / "race.sock"), lanes=request.param),
        logic=Logic(),
    )
    daemon.start()
    yield daemon
    daemon.stop()


def _verdict(response):
    return (response["ok"], response.get("types"), response.get("error"))


def _check_stream(server, resets_between=0, reset_client=None):
    """Check the generated corpus; optionally storm resets between."""
    verdicts = []
    with Client(socket_path=server.config.socket_path) as client:
        for index in range(PROGRAMS):
            spec = generate_program(SEED, index)
            if reset_client is not None and index % 3 == 0:
                for _ in range(resets_between):
                    reset_client.reset()
            verdicts.append(
                _verdict(client.check_text(f"mod-{index}", spec.source))
            )
    return verdicts


def test_reset_storm_preserves_verdicts(server):
    baseline = _check_stream(server)
    with Client(socket_path=server.config.socket_path) as resetter:
        stormed = _check_stream(server, resets_between=2, reset_client=resetter)
    assert stormed == baseline


def test_concurrent_reset_thread_preserves_verdicts(server):
    """Resets fired from a parallel thread, not between requests."""
    baseline = _check_stream(server)
    stop = threading.Event()
    errors = []

    def storm():
        try:
            with Client(socket_path=server.config.socket_path) as resetter:
                while not stop.is_set():
                    resetter.reset()
        except Exception as exc:  # surfaced below; never swallowed
            errors.append(exc)

    thread = threading.Thread(target=storm, daemon=True)
    thread.start()
    try:
        stormed = _check_stream(server)
    finally:
        stop.set()
        thread.join(timeout=10.0)
    assert not errors
    assert stormed == baseline


def test_reset_invalidates_session_cache_but_not_verdicts(server):
    """An unchanged module re-checks cold after reset, same verdict."""
    spec = generate_program(SEED, 0)
    with Client(socket_path=server.config.socket_path) as client:
        first = client.check_text("mod", spec.source)
        cached = client.check_text("mod", spec.source)
        assert cached["cached"] is True
        client.reset()
        after = client.check_text("mod", spec.source)
        # the session store was dropped: a genuine re-check, not a replay
        assert after["cached"] is False
        assert _verdict(after) == _verdict(first)
