"""Tests for the synthetic corpus generator (section 5 substrate)."""

import random

import pytest

from repro.checker.check import Checker
from repro.checker.errors import CheckError, UnsupportedFeature
from repro.corpus.generator import build_all_libraries, build_library, count_loc
from repro.corpus.patterns import PATTERNS, TIER_POOLS, PatternInstance, instantiate
from repro.corpus.profiles import PAPER_CORPUS, PROFILES
from repro.study.casestudy import _expand_module, access_sites, safe_replace
from repro.syntax.parser import parse_program


class TestPatterns:
    @pytest.mark.parametrize("name", sorted(PATTERNS))
    def test_instantiates(self, name):
        inst = instantiate(name, random.Random(7), "_t_1")
        assert isinstance(inst, PatternInstance)
        assert inst.accesses >= 1

    @pytest.mark.parametrize("name", sorted(PATTERNS))
    def test_declared_access_count_matches_source(self, name):
        inst = instantiate(name, random.Random(7), "_t_2")
        forms = _expand_module(inst.base)
        assert access_sites(forms) == inst.accesses

    @pytest.mark.parametrize("name", sorted(PATTERNS))
    def test_variants_preserve_access_count(self, name):
        inst = instantiate(name, random.Random(7), "_t_3")
        for variant in (inst.annotated, inst.modified):
            if variant is not None:
                assert access_sites(_expand_module(variant)) == inst.accesses

    @pytest.mark.parametrize("name", sorted(PATTERNS))
    def test_base_program_type_checks_with_plain_ops(self, name):
        """The corpus is real code: every base program checks as written."""
        inst = instantiate(name, random.Random(7), "_t_4")
        try:
            Checker().check_program(parse_program(_expand_module(inst.base)))
        except UnsupportedFeature:
            assert name == "struct_field"

    def test_deterministic_given_seed(self):
        a = instantiate("guard", random.Random(3), "_t_5")
        b = instantiate("guard", random.Random(3), "_t_5")
        assert a == b

    def test_tier_pools_cover_all_patterns(self):
        pooled = {p for pool in TIER_POOLS.values() for p in pool}
        assert pooled == set(PATTERNS)


class TestReplacement:
    def test_safe_replace_targets_one_site(self):
        inst = instantiate("dyn_check", random.Random(1), "_t_6")
        forms = _expand_module(inst.base)
        replaced = safe_replace(forms, 0)
        text = repr(replaced)
        assert text.count("safe-vec-ref") == 1

    def test_safe_replace_is_pure(self):
        inst = instantiate("guard", random.Random(1), "_t_7")
        forms = _expand_module(inst.base)
        before = repr(forms)
        safe_replace(forms, 0)
        assert repr(forms) == before

    def test_indices_are_independent(self):
        inst = instantiate("swap", random.Random(1), "_t_8")
        forms = _expand_module(inst.base)
        for index in range(inst.accesses):
            replaced = repr(safe_replace(forms, index))
            assert replaced.count("safe-vec-") == 1


class TestLibraries:
    def test_quota_exact_at_scale(self):
        lib = build_library(PROFILES["math"])
        assert lib.ops == PAPER_CORPUS["math"][1]

    def test_tier_quota_distribution(self):
        lib = build_library(PROFILES["math"])
        targets = lib.tier_targets()
        assert targets["unsafe"] == 2  # the paper's two unsafe ops
        assert targets["auto"] == PROFILES["math"].tier_ops["auto"]

    def test_loc_meets_target(self):
        lib = build_library(PROFILES["plot"])
        assert lib.loc >= PROFILES["plot"].loc_target
        # within a filler function of the target
        assert lib.loc <= PROFILES["plot"].loc_target + 10

    def test_scaled_build(self):
        libs = build_all_libraries(scale=0.02)
        assert set(libs) == {"math", "plot", "pict3d"}
        for lib in libs.values():
            assert 0 < lib.ops < 60

    def test_determinism(self):
        a = build_library(PROFILES["pict3d"])
        b = build_library(PROFILES["pict3d"])
        assert [p.base for p in a.programs] == [p.base for p in b.programs]

    def test_total_corpus_matches_paper(self):
        libs = build_all_libraries()
        total_ops = sum(lib.ops for lib in libs.values())
        total_loc = sum(lib.loc for lib in libs.values())
        assert total_ops == 1085
        assert abs(total_loc - 56_835) < 50

    def test_filler_functions_type_check(self):
        """LoC padding is real library code: every filler checks."""
        lib = build_library(PROFILES["pict3d"])
        sample = lib.fillers[:40]
        assert sample
        module = "\n".join(sample)
        Checker().check_program(parse_program(module))

    def test_fillers_have_no_vector_ops(self):
        lib = build_library(PROFILES["math"])
        for filler in lib.fillers[:200]:
            assert access_sites(_expand_module(filler)) == 0
