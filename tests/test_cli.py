"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main

GOOD = """
(: max : [x : Int] [y : Int]
   -> [z : Int #:where (and (>= z x) (>= z y))])
(define (max x y) (if (> x y) x y))
(max 3 7)
"""

BAD = """
(: f : Int -> Bool)
(define (f x) x)
"""


@pytest.fixture
def good_file(tmp_path):
    path = tmp_path / "good.rkt"
    path.write_text(GOOD)
    return str(path)


@pytest.fixture
def bad_file(tmp_path):
    path = tmp_path / "bad.rkt"
    path.write_text(BAD)
    return str(path)


class TestCheck:
    def test_good_module(self, good_file, capsys):
        assert main(["check", good_file]) == 0
        assert "OK" in capsys.readouterr().out

    def test_verbose_prints_types(self, good_file, capsys):
        assert main(["check", "-v", good_file]) == 0
        assert "max :" in capsys.readouterr().out

    def test_bad_module(self, bad_file, capsys):
        assert main(["check", bad_file]) == 1
        assert "FAILED" in capsys.readouterr().err

    def test_mixed_modules_fail_overall(self, good_file, bad_file):
        assert main(["check", good_file, bad_file]) == 1

    def test_stats_reports_engine_counters(self, good_file, capsys):
        assert main(["check", "--stats", good_file]) == 0
        out = capsys.readouterr().out
        assert "Incremental proof engine statistics" in out
        assert "proof cache" in out
        assert "theory sessions" in out
        assert "interned nodes" in out

    def test_stats_hit_rate_grows_on_recheck(self, good_file, capsys):
        # checking the same module twice in one invocation reuses the
        # engine: the second pass must produce cache hits
        assert main(["check", "--stats", good_file, good_file]) == 0
        out = capsys.readouterr().out
        hits_line = next(l for l in out.splitlines() if "proof cache" in l)
        hits = int(hits_line.split()[2])
        assert hits > 0


CRASHING = """
(: boom : (Vecof Int) -> Int)
(define (boom v) (vec-ref v 99))
(boom (vector 1 2))
"""


@pytest.fixture
def crashing_file(tmp_path):
    path = tmp_path / "crash.rkt"
    path.write_text(CRASHING)
    return str(path)


class TestRun:
    def test_runs_and_prints_results(self, good_file, capsys):
        assert main(["run", good_file]) == 0
        assert "7" in capsys.readouterr().out

    def test_refuses_ill_typed(self, bad_file):
        assert main(["run", bad_file]) == 1

    def test_unchecked_runs_anyway(self, bad_file, capsys):
        assert main(["run", "--unchecked", bad_file]) == 0

    def test_static_failure_names_the_file(self, bad_file, capsys):
        assert main(["run", bad_file]) == 1
        assert bad_file in capsys.readouterr().err

    def test_runtime_failure_is_exit_2_and_names_the_file(
        self, crashing_file, capsys
    ):
        assert main(["run", crashing_file]) == 2
        err = capsys.readouterr().err
        assert crashing_file in err
        assert "runtime error" in err

    def test_batch_mode_keeps_going_and_returns_worst_status(
        self, good_file, bad_file, crashing_file, capsys
    ):
        assert main(["run", good_file, bad_file, crashing_file]) == 2
        captured = capsys.readouterr()
        assert "7" in captured.out          # the good module still ran
        assert bad_file in captured.err
        assert crashing_file in captured.err

    def test_missing_file_is_reported_not_raised(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.rkt")
        assert main(["run", missing]) == 1
        assert missing in capsys.readouterr().err


class TestCheckMissingFile:
    def test_missing_file_is_reported_not_raised(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.rkt")
        assert main(["check", missing]) == 1
        assert missing in capsys.readouterr().err


class TestEval:
    def test_simple_expression(self, capsys):
        assert main(["eval", "(+ 1 2)"]) == 0
        assert capsys.readouterr().out.strip() == "3"

    def test_boolean_rendering(self, capsys):
        assert main(["eval", "(< 2 1)"]) == 0
        assert capsys.readouterr().out.strip() == "#f"

    def test_vector_rendering(self, capsys):
        assert main(["eval", "(vector 1 2)"]) == 0
        assert capsys.readouterr().out.strip() == "#(1 2)"

    def test_rejects_unsafe(self, capsys):
        assert main(["eval", "(safe-vec-ref (vector 1) 5)"]) == 1
        assert "error" in capsys.readouterr().err

    def test_runtime_error_reported(self, capsys):
        # exit 2: statically fine, dynamically failed (vec-ref is the
        # *checked* accessor — the checker imposes no bounds proof)
        assert main(["eval", "(vec-ref (vector 1) 5)"]) == 2


class TestFuzz:
    def test_clean_campaign_exits_zero(self, capsys):
        assert main(["fuzz", "--seed", "3", "--count", "8"]) == 0
        out = capsys.readouterr().out
        assert "Differential fuzzing campaign" in out
        assert "digest" in out

    def test_injected_bug_exits_nonzero_with_counterexample(self, capsys):
        status = main(
            ["fuzz", "--seed", "42", "--count", "12", "--inject-bug",
             "--max-shrinks", "1"]
        )
        assert status == 1
        captured = capsys.readouterr()
        assert "violation" in captured.err
        assert "checker under test      blind" in captured.out


class TestStudy:
    def test_tiny_study(self, capsys):
        assert main(["study", "--scale", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "Figure 9" in out
        assert "math" in out


class TestServeAndClient:
    """The daemon subcommands; the full service is tested in
    tests/test_server.py — here we pin the CLI contract."""

    def test_serve_requires_an_address(self, capsys):
        assert main(["serve"]) == 1
        assert "--socket" in capsys.readouterr().err

    def test_client_requires_an_address(self, capsys):
        assert main(["client", "stats"]) == 2
        assert "cannot connect" in capsys.readouterr().err

    def test_client_argument_arity_checked(self, capsys):
        assert main(["client", "--socket", "/nowhere.sock", "check-text"]) == 2

    def test_client_against_live_daemon(self, tmp_path, good_file, bad_file, capsys):
        from repro.logic.prove import Logic
        from repro.server import CheckingServer, ServerConfig

        daemon = CheckingServer(
            ServerConfig(socket_path=str(tmp_path / "cli.sock")), logic=Logic()
        )
        daemon.start()
        try:
            socket_args = ["client", "--socket", daemon.config.socket_path]
            assert main(socket_args + ["check", good_file]) == 0
            assert "OK" in capsys.readouterr().out
            assert main(socket_args + ["check", bad_file]) == 1
            assert "FAILED" in capsys.readouterr().err
            assert main(socket_args + ["eval", "(+ 40 2)"]) == 0
            assert capsys.readouterr().out.strip() == "42"
            assert main(socket_args + ["check-text", "demo", good_file]) == 0
            assert "demo: OK" in capsys.readouterr().out
            assert main(socket_args + ["stats"]) == 0
            assert '"protocol"' in capsys.readouterr().out
            assert main(socket_args + ["reset"]) == 0
            capsys.readouterr()
            assert main(socket_args + ["shutdown"]) == 0
        finally:
            daemon.stop()

    def test_client_affinity_pins_a_lane_of_a_multi_lane_daemon(
        self, tmp_path, good_file, capsys
    ):
        import json as json_mod

        from repro.logic.prove import Logic
        from repro.server import CheckingServer, ServerConfig

        daemon = CheckingServer(
            ServerConfig(socket_path=str(tmp_path / "lanes.sock"), lanes=3),
            logic=Logic(),
        )
        daemon.start()
        try:
            socket_args = ["client", "--socket", daemon.config.socket_path]
            expected_lane = CheckingServer.lane_index_for("editor-1", 3)
            assert main(
                socket_args
                + ["--affinity", "editor-1", "--json", "check", good_file]
            ) == 0
            response = json_mod.loads(capsys.readouterr().out)
            assert response["lane"] == expected_lane
            # stats exposes one row per lane, each with its own counters
            assert main(socket_args + ["stats"]) == 0
            snapshot = json_mod.loads(capsys.readouterr().out)
            lanes = snapshot["server"]["lanes"]
            assert [row["index"] for row in lanes] == [0, 1, 2]
            assert all("robustness" in row for row in lanes)
        finally:
            daemon.stop()
