"""Tests for propositions and their smart constructors."""

from hypothesis import given, strategies as st

from repro.tr.objects import NULL, Var, obj_int
from repro.tr.props import (
    FF,
    TT,
    And,
    BVProp,
    FalseProp,
    IsType,
    LeqZero,
    NotType,
    Or,
    TrueProp,
    lin_eq,
    lin_ge,
    lin_gt,
    lin_le,
    lin_lt,
    make_alias,
    make_and,
    make_is,
    make_not,
    make_or,
    negate_prop,
    prop_free_vars,
)
from repro.tr.types import BOOL, INT


class TestSmartConstructors:
    def test_and_drops_tt(self):
        p = lin_le(Var("x"), obj_int(3))
        assert make_and([TT, p, TT]) == p

    def test_and_absorbs_ff(self):
        assert make_and([lin_le(Var("x"), obj_int(3)), FF]) == FF

    def test_and_empty_is_tt(self):
        assert make_and([]) == TT

    def test_and_flattens(self):
        p = lin_le(Var("x"), obj_int(1))
        q = lin_le(Var("y"), obj_int(2))
        r = lin_le(Var("z"), obj_int(3))
        flat = make_and([p, make_and([q, r])])
        assert isinstance(flat, And)
        assert flat.conjuncts == (p, q, r)

    def test_and_dedups(self):
        p = lin_le(Var("x"), obj_int(1))
        assert make_and([p, p]) == p

    def test_or_drops_ff(self):
        p = lin_le(Var("x"), obj_int(3))
        assert make_or([FF, p]) == p

    def test_or_absorbs_tt(self):
        assert make_or([lin_le(Var("x"), obj_int(3)), TT]) == TT

    def test_or_empty_is_ff(self):
        assert make_or([]) == FF

    def test_is_null_object_discarded(self):
        assert make_is(NULL, INT) == TT

    def test_not_null_object_discarded(self):
        assert make_not(NULL, INT) == TT

    def test_alias_reflexive_is_tt(self):
        assert make_alias(Var("x"), Var("x")) == TT

    def test_alias_null_is_tt(self):
        assert make_alias(NULL, Var("x")) == TT


class TestComparisons:
    def test_le_constant_folds_true(self):
        assert lin_le(obj_int(2), obj_int(3)) == TT

    def test_le_constant_folds_false(self):
        assert lin_le(obj_int(4), obj_int(3)) == FF

    def test_lt_strictness(self):
        assert lin_lt(obj_int(3), obj_int(3)) == FF
        assert lin_le(obj_int(3), obj_int(3)) == TT

    def test_lt_is_le_plus_one(self):
        x, y = Var("x"), Var("y")
        # x < y  ⟺  x + 1 ≤ y  ⟺  x - y + 1 ≤ 0
        prop = lin_lt(x, y)
        assert isinstance(prop, LeqZero)
        assert prop.expr.const == 1

    def test_eq_is_two_inequalities(self):
        prop = lin_eq(Var("x"), Var("y"))
        assert isinstance(prop, And)
        assert len(prop.conjuncts) == 2

    def test_eq_on_equal_constants(self):
        assert lin_eq(obj_int(5), obj_int(5)) == TT

    def test_ge_gt_flip(self):
        assert lin_ge(obj_int(5), obj_int(3)) == TT
        assert lin_gt(obj_int(5), obj_int(5)) == FF


class TestNegation:
    def test_negate_tt(self):
        assert negate_prop(TT) == FF
        assert negate_prop(FF) == TT

    def test_negate_istype(self):
        prop = IsType(Var("x"), INT)
        assert negate_prop(prop) == NotType(Var("x"), INT)
        assert negate_prop(negate_prop(prop)) == prop

    def test_negate_leqzero_integer_semantics(self):
        # ¬(x ≤ 0) over Z is x ≥ 1
        prop = lin_le(Var("x"), obj_int(0))
        neg = negate_prop(prop)
        assert neg == lin_le(obj_int(1), Var("x"))

    def test_double_negation_of_leqzero(self):
        prop = lin_le(Var("x"), obj_int(7))
        assert negate_prop(negate_prop(prop)) == prop

    def test_de_morgan_and(self):
        p = IsType(Var("x"), INT)
        q = IsType(Var("y"), BOOL)
        neg = negate_prop(make_and([p, q]))
        assert isinstance(neg, Or)

    def test_de_morgan_or(self):
        p = IsType(Var("x"), INT)
        q = IsType(Var("y"), BOOL)
        neg = negate_prop(make_or([p, q]))
        assert isinstance(neg, And)

    def test_negate_bvprop_flips_op(self):
        prop = BVProp("=", Var("a"), Var("b"), 8)
        assert negate_prop(prop).op == "≠"
        assert negate_prop(negate_prop(prop)) == prop


class TestFreeVars:
    def test_istype(self):
        assert prop_free_vars(IsType(Var("x"), INT)) == {"x"}

    def test_compound(self):
        p = make_and([IsType(Var("x"), INT), lin_le(Var("y"), obj_int(0))])
        assert prop_free_vars(p) == {"x", "y"}

    def test_trivial(self):
        assert prop_free_vars(TT) == frozenset()
        assert prop_free_vars(FF) == frozenset()

    def test_alias(self):
        assert prop_free_vars(make_alias(Var("a"), Var("b"))) == {"a", "b"}


@given(st.integers(-50, 50), st.integers(-50, 50))
def test_constant_comparisons_fold_consistently(a, b):
    assert (lin_le(obj_int(a), obj_int(b)) == TT) == (a <= b)
    assert (lin_lt(obj_int(a), obj_int(b)) == TT) == (a < b)
    assert (lin_eq(obj_int(a), obj_int(b)) == TT) == (a == b)
