"""Tests for the corpus generator's planning internals."""

import random

from repro.corpus.generator import Library, build_library, count_loc
from repro.corpus.profiles import PROFILES, LibraryProfile


def _profile(tier_ops, loc=200, seed=7):
    return LibraryProfile(name="t", loc_target=loc, tier_ops=tier_ops, seed=seed)


class TestCountLoc:
    def test_blank_lines_ignored(self):
        assert count_loc("a\n\n  \nb\n") == 2

    def test_empty(self):
        assert count_loc("") == 0


class TestQuotaPlanning:
    def test_exact_single_tier(self):
        lib = build_library(_profile({"auto": 10}))
        assert lib.ops == 10
        assert all(t == "auto" for p in lib.programs for t in p.expected)

    def test_exact_with_multi_access_patterns(self):
        # vec_match contributes 2-4 ops; the planner must land exactly
        for target in (1, 2, 3, 5, 7, 11):
            lib = build_library(_profile({"auto": target}))
            assert lib.ops == target, target

    def test_mixed_tiers(self):
        lib = build_library(
            _profile({"auto": 5, "annotation": 3, "unsafe": 1})
        )
        targets = lib.tier_targets()
        assert targets == {"auto": 5, "annotation": 3, "unsafe": 1}

    def test_zero_tier_produces_nothing(self):
        lib = build_library(_profile({"auto": 3, "modification": 0}))
        assert "modification" not in lib.tier_targets()

    def test_loc_padding(self):
        lib = build_library(_profile({"auto": 2}, loc=500))
        assert 500 <= lib.loc <= 510
        assert lib.fillers

    def test_no_padding_when_target_met(self):
        lib = build_library(_profile({"auto": 30}, loc=1))
        assert lib.fillers == []

    def test_unique_program_names(self):
        lib = build_library(PROFILES["math"])
        names = [p.name for p in lib.programs]
        assert len(names) == len(set(names))

    def test_seed_controls_content(self):
        a = build_library(_profile({"auto": 6}, seed=1))
        b = build_library(_profile({"auto": 6}, seed=2))
        assert [p.base for p in a.programs] != [p.base for p in b.programs]
