"""Tests for the corpus generator's planning internals."""

import hashlib
import os
import random
import subprocess
import sys
from pathlib import Path

from repro.corpus.generator import (
    Library,
    build_all_libraries,
    build_library,
    count_loc,
)
from repro.corpus.profiles import PROFILES, LibraryProfile


def _profile(tier_ops, loc=200, seed=7):
    return LibraryProfile(name="t", loc_target=loc, tier_ops=tier_ops, seed=seed)


class TestCountLoc:
    def test_blank_lines_ignored(self):
        assert count_loc("a\n\n  \nb\n") == 2

    def test_empty(self):
        assert count_loc("") == 0


class TestQuotaPlanning:
    def test_exact_single_tier(self):
        lib = build_library(_profile({"auto": 10}))
        assert lib.ops == 10
        assert all(t == "auto" for p in lib.programs for t in p.expected)

    def test_exact_with_multi_access_patterns(self):
        # vec_match contributes 2-4 ops; the planner must land exactly
        for target in (1, 2, 3, 5, 7, 11):
            lib = build_library(_profile({"auto": target}))
            assert lib.ops == target, target

    def test_mixed_tiers(self):
        lib = build_library(
            _profile({"auto": 5, "annotation": 3, "unsafe": 1})
        )
        targets = lib.tier_targets()
        assert targets == {"auto": 5, "annotation": 3, "unsafe": 1}

    def test_zero_tier_produces_nothing(self):
        lib = build_library(_profile({"auto": 3, "modification": 0}))
        assert "modification" not in lib.tier_targets()

    def test_loc_padding(self):
        lib = build_library(_profile({"auto": 2}, loc=500))
        assert 500 <= lib.loc <= 510
        assert lib.fillers

    def test_no_padding_when_target_met(self):
        lib = build_library(_profile({"auto": 30}, loc=1))
        assert lib.fillers == []

    def test_unique_program_names(self):
        lib = build_library(PROFILES["math"])
        names = [p.name for p in lib.programs]
        assert len(names) == len(set(names))

    def test_seed_controls_content(self):
        a = build_library(_profile({"auto": 6}, seed=1))
        b = build_library(_profile({"auto": 6}, seed=2))
        assert [p.base for p in a.programs] != [p.base for p in b.programs]


def _library_bytes(library: Library) -> bytes:
    """Every byte of generated content, in emission order."""
    chunks = [p.base for p in library.programs]
    chunks += [p.annotated or "" for p in library.programs]
    chunks += [p.modified or "" for p in library.programs]
    chunks += library.fillers
    return "\x00".join(chunks).encode()


def _corpus_digest(scale: float = 0.03) -> str:
    libraries = build_all_libraries(scale=scale)
    digest = hashlib.sha256()
    for name in sorted(libraries):
        digest.update(name.encode())
        digest.update(_library_bytes(libraries[name]))
    return digest.hexdigest()


class TestDeterminism:
    """``build_all_libraries`` is byte-for-byte reproducible."""

    def test_rebuild_is_identical(self):
        a = build_library(PROFILES["math"])
        b = build_library(PROFILES["math"])
        assert _library_bytes(a) == _library_bytes(b)

    def test_tier_ops_insertion_order_is_immaterial(self):
        forward = _profile({"auto": 5, "annotation": 3, "unsafe": 1})
        backward = _profile({"unsafe": 1, "annotation": 3, "auto": 5})
        assert _library_bytes(build_library(forward)) == _library_bytes(
            build_library(backward)
        )

    def test_no_rng_leakage_between_tiers(self):
        """One tier's content cannot depend on another tier's quota."""
        alone = build_library(_profile({"auto": 7}))
        mixed = build_library(_profile({"auto": 7, "annotation": 4}))
        auto_alone = [p.base for p in alone.programs if p.expected[0] == "auto"]
        auto_mixed = [p.base for p in mixed.programs if p.expected[0] == "auto"]
        assert auto_alone == auto_mixed

    def test_fillers_independent_of_tier_randomness(self):
        """The filler stream is not advanced by pattern instantiation."""
        small = build_library(_profile({"auto": 2}, loc=400))
        large = build_library(_profile({"auto": 9}, loc=400))
        assert small.fillers
        # identical prefix: only the LoC already covered differs
        overlap = min(len(small.fillers), len(large.fillers))
        assert overlap > 0
        assert small.fillers[:overlap] == large.fillers[:overlap]

    def test_deterministic_across_processes(self):
        """Byte-identical corpora under different PYTHONHASHSEEDs."""
        script = (
            "import hashlib\n"
            "from repro.corpus.generator import build_all_libraries\n"
            "libraries = build_all_libraries(scale=0.03)\n"
            "digest = hashlib.sha256()\n"
            "for name in sorted(libraries):\n"
            "    library = libraries[name]\n"
            "    chunks = [p.base for p in library.programs]\n"
            "    chunks += [p.annotated or '' for p in library.programs]\n"
            "    chunks += [p.modified or '' for p in library.programs]\n"
            "    chunks += library.fillers\n"
            "    digest.update(name.encode())\n"
            "    digest.update('\\x00'.join(chunks).encode())\n"
            "print(digest.hexdigest())\n"
        )
        src_dir = str(Path(__file__).resolve().parents[1] / "src")
        digests = []
        for hashseed in ("1", "271828"):
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                check=True,
                env={
                    **os.environ,
                    "PYTHONHASHSEED": hashseed,
                    "PYTHONPATH": src_dir,
                },
            )
            digests.append(proc.stdout.strip())
        assert digests[0] == digests[1]
        assert digests[0] == _corpus_digest()
