"""Unit coverage for the layered proof kernel's stages.

Normalization rules are pure single-step rewrites; saturation is a
budgeted worklist; dispatch batches theory atoms per frame.  These
tests pin the stage contracts directly, below the Logic façade.
"""

from repro.logic.env import Env
from repro.logic.kernel.normalize import (
    ALIAS,
    PROP,
    TYPE,
    alias_forks,
    canon_theory,
    clausify_step,
    decompose_type,
)
from repro.logic.prove import Logic
from repro.tr.objects import PairObj, Var, obj_int
from repro.tr.props import (
    And,
    FalseProp,
    IsType,
    NotType,
    Or,
    TrueProp,
    lin_le,
    make_alias,
    make_and,
)
from repro.tr.parse import NAT
from repro.tr.types import INT, Pair, Refine, Union

X, Y = Var("x"), Var("y")


class TestNormalize:
    def test_conjunctions_split_in_order(self):
        prop = make_and((IsType(X, INT), IsType(Y, INT)))
        steps = clausify_step(prop)
        assert steps == [
            (PROP, IsType(X, INT)),
            (PROP, IsType(Y, INT)),
        ]

    def test_atoms_become_typed_items(self):
        assert clausify_step(IsType(X, INT)) == [(TYPE, X, INT, True)]
        assert clausify_step(NotType(X, INT)) == [(TYPE, X, INT, False)]
        assert clausify_step(make_alias(X, Y)) == [(ALIAS, X, Y)]

    def test_disjunctions_are_not_clausified(self):
        # Or shrinking needs the store's state; the step must decline.
        assert clausify_step(Or((IsType(X, INT), IsType(Y, INT)))) is None

    def test_positive_refinement_unpacks(self):
        refined = Refine("v", INT, lin_le(obj_int(0), Var("v")))
        steps = decompose_type(X, refined, True)
        assert steps[0] == (TYPE, X, INT, True)
        tag, unpacked = steps[1]
        assert tag == PROP and unpacked == lin_le(obj_int(0), X)

    def test_negative_refinement_becomes_disjunction(self):
        refined = Refine("v", INT, lin_le(obj_int(0), Var("v")))
        ((tag, prop),) = decompose_type(X, refined, False)
        assert tag == PROP and isinstance(prop, Or)

    def test_pair_fact_forks_pointwise(self):
        pair_obj = PairObj(X, Y)
        steps = decompose_type(pair_obj, Pair(INT, NAT), True)
        assert steps == [
            (TYPE, X, INT, True),
            (TYPE, Y, NAT, True),
        ]

    def test_pair_alias_forks_pointwise(self):
        left = PairObj(X, Y)
        right = PairObj(Var("a"), Var("b"))
        assert alias_forks(left, right) == [
            (ALIAS, X, Var("a")),
            (ALIAS, Y, Var("b")),
        ]

    def test_canon_theory_constant_folds(self):
        identity = lambda obj: obj
        assert isinstance(
            canon_theory(identity, lin_le(obj_int(0), obj_int(1))), TrueProp
        )
        assert isinstance(
            canon_theory(identity, lin_le(obj_int(1), obj_int(0))), FalseProp
        )


class TestSaturation:
    def test_extension_is_iterative_on_wide_conjunctions(self):
        logic = Logic()
        conjuncts = tuple(IsType(Var(f"v{i}"), INT) for i in range(3000))
        env = logic.extend(Env(), And(conjuncts))
        assert len(env.types) == 3000

    def test_step_budget_drops_rather_than_dies(self):
        logic = Logic(max_steps=10)
        conjuncts = tuple(IsType(Var(f"v{i}"), INT) for i in range(100))
        env = logic.extend(Env(), And(conjuncts))
        # budget exhausted: some facts dropped, environment consistent
        assert 0 < len(env.types) < 100
        assert not env.inconsistent

    def test_contradiction_marks_inconsistent(self):
        logic = Logic()
        env = logic.extend(Env(), IsType(X, Union(())))
        assert env.inconsistent

    def test_alias_merge_skips_recanon_for_fresh_names(self):
        # The T-Let pattern: alias a fresh variable to an existing
        # object.  No record mentions the fresh name, so the merge must
        # not rebuild the record tables (same dict identity).
        logic = Logic()
        env = logic.extend(Env(), IsType(X, INT))
        extended = logic.extend(env, make_alias(Var("fresh"), X))
        assert extended.aliases.same_class(Var("fresh"), X)
        assert extended.types.get(X) == INT  # record survived unmoved

    def test_alias_merge_keeps_facts_reachable_through_either_name(self):
        # Regression: aliasing a *recorded* variable to an unrecorded
        # one demotes the recorded name; its facts must be re-keyed
        # onto the representative, and proofs must go through under
        # both spellings.  (A mis-unpacked change set once skipped the
        # re-canonicalisation here.)
        logic = Logic()
        env = logic.extend(Env(), IsType(X, INT))
        merged = logic.extend(env, make_alias(X, Y))
        assert logic.proves(merged, IsType(X, INT))
        assert logic.proves(merged, IsType(Y, INT))

    def test_alias_merge_recanons_when_records_mention_demoted(self):
        # Aliasing two recorded variables re-keys onto the representative.
        logic = Logic()
        env = Env()
        env = logic.extend(env, IsType(X, INT))
        env = logic.extend(env, IsType(Y, NAT))
        merged = logic.extend(env, make_alias(X, Y))
        rep = merged.aliases.find(X)
        assert merged.aliases.same_class(X, Y)
        # both facts now live on the representative, intersected
        assert rep in merged.types


class TestDispatchStage:
    def test_conjoined_theory_goals_use_one_batch(self):
        logic = Logic()
        env = logic.extend(Env(), lin_le(X, obj_int(5)))
        goal = make_and((lin_le(X, obj_int(6)), lin_le(X, obj_int(7))))
        assert logic.proves(env, goal)
        assert logic.stats.theory_batches >= 1

    def test_batched_answers_match_singles(self):
        goals = [lin_le(X, obj_int(6)), lin_le(obj_int(9), X)]
        batched = Logic()
        env_b = batched.extend(Env(), lin_le(X, obj_int(5)))
        combined = batched.proves(env_b, make_and(tuple(goals)))
        singles = Logic()
        env_s = singles.extend(Env(), lin_le(X, obj_int(5)))
        individually = [singles.proves(env_s, g) for g in goals]
        assert combined == all(individually)
        assert individually == [True, False]
