"""Existential type-results (§3.2, §4.1): dependency without objects."""

import pytest

from repro.checker.check import Checker, check_program_text
from repro.checker.errors import CheckError
from repro.logic.env import Env
from repro.syntax.parser import parse_expr_text


def synth(text):
    return Checker().synth(Env(), parse_expr_text(text))


def checks(src):
    check_program_text(src)
    return True


def fails(src):
    with pytest.raises(CheckError):
        check_program_text(src)
    return True


class TestBinderCreation:
    def test_len_of_vector_literal_is_existential(self):
        # (vector ...) has no object, so (len <vec>) depends on an
        # existential witness carrying the length refinement.
        result = synth("(len (vector 1 2 3))")
        assert result.binders, "expected an existential binder"

    def test_binder_carries_length_fact(self):
        # the existential's refinement proves the constant access below
        assert checks("(safe-vec-ref (vector 1 2 3) 2)")
        assert fails("(safe-vec-ref (vector 1 2 3) 9)")

    def test_let_of_objectless_rhs(self):
        # binding a fresh vector: facts must survive the binding
        assert checks(
            """
            (: f : -> Int)
            (define (f)
              (let ([v (vector 5 6 7)])
                (safe-vec-ref v 1)))
            """
        )

    def test_arithmetic_through_existential(self):
        assert checks(
            """
            (: f : -> Int)
            (define (f)
              (let ([v (make-vec 10 0)])
                (safe-vec-ref v (- (len v) 1))))
            """
        )


class TestBinderScoping:
    def test_branch_existentials_do_not_leak(self):
        # each branch allocates its own vector; the join must not let
        # one branch's length fact justify the other's access
        assert fails(
            """
            (: f : Bool -> Int)
            (define (f b)
              (let ([v (if b (vector 1 2 3) (vector 1))])
                (safe-vec-ref v 2)))
            """
        )

    def test_common_lower_bound_usable_after_join(self):
        assert checks(
            """
            (: f : Bool -> Int)
            (define (f b)
              (let ([v (if b (vector 1 2 3) (vector 1))])
                (if (< 0 (len v)) (safe-vec-ref v 0) 0)))
            """
        )

    def test_function_results_are_fresh_per_call(self):
        # two calls to make-vec give two unrelated witnesses: the second
        # vector's length says nothing about the first
        assert fails(
            """
            (: f : Nat Nat -> Int)
            (define (f n m)
              (let ([a (make-vec n 0)])
                (let ([b (make-vec m 0)])
                  (if (< 0 (len b)) (safe-vec-ref a 0) 0))))
            """
        )

    def test_per_call_witnesses_track_their_call(self):
        assert checks(
            """
            (: f : Nat Nat -> Int)
            (define (f n m)
              (let ([a (make-vec n 0)])
                (let ([b (make-vec m 0)])
                  (if (< 0 (len a)) (safe-vec-ref a 0) 0))))
            """
        )


class TestDependentRangesViaExistentials:
    def test_make_vec_length_equation(self):
        assert checks(
            """
            (: f : Nat -> Int)
            (define (f n)
              (let ([v (make-vec (+ n 1) 0)])
                (safe-vec-ref v n)))
            """
        )

    def test_make_vec_length_equation_tight(self):
        assert fails(
            """
            (: f : Nat -> Int)
            (define (f n)
              (let ([v (make-vec n 0)])
                (safe-vec-ref v n)))
            """
        )
