"""Coverage vectors, the novelty corpus, and the guided scheduler.

Pins the three properties the coverage-guided farm rests on:

* **determinism** — same (seed, shard count) ⇒ byte-identical coverage
  digests, whether shards run in-process or as forked processes;
* **scheduling** — family weights move away from saturated families
  and toward novelty, never starving anyone below the floor;
* **guidance pays** — at equal program budget, the guided campaign
  reaches engine coverage the uniform (static-weight) campaign misses
  (the pinned seed makes the gap deterministic).
"""

import pytest

from repro.fuzz import FuzzConfig, run_fuzz
from repro.fuzz.coverage import (
    CoverageMap,
    CoverageScheduler,
    CoverageVector,
    coverage_from_delta,
    coverage_from_stats_dict,
)
from repro.fuzz.runner import run_shard
from repro.logic.prove import EngineStats


# ----------------------------------------------------------------------
# vectors
# ----------------------------------------------------------------------
def _stats(rules=(), theories=(), solvers=()):
    stats = EngineStats()
    stats.rule_hits.update(rules)
    stats.theory_queries.update(theories)
    stats.solver_counters.update(solvers)
    return stats


def test_vector_projects_all_three_counter_families():
    delta = _stats(
        rules={"sat.type+": 4},
        theories={"linarith": 1},
        solvers={"simplex.pivots": 9},
    )
    points = coverage_from_delta(delta).points
    assert "rule:sat.type+" in points
    assert "rule:sat.type+@3" in points        # 4 hits -> bucket 3
    assert "theory:linarith" in points
    assert "theory:linarith@1" in points
    assert "solver:simplex.pivots" in points
    assert "solver:simplex.pivots@4" in points  # 9 hits -> bucket 4


def test_vector_ignores_zero_counts():
    assert not coverage_from_delta(_stats(rules={"sat.type+": 0}))


def test_magnitude_buckets_make_harder_runs_novel():
    light = coverage_from_delta(_stats(rules={"sat.theory": 2}))
    heavy = coverage_from_delta(_stats(rules={"sat.theory": 200}))
    assert "rule:sat.theory" in light.points & heavy.points
    assert heavy.points - light.points  # the magnitude point differs


def test_stats_dict_projection_matches_object_projection():
    delta = _stats(rules={"sat.type+": 4}, theories={"linarith": 3})
    assert coverage_from_stats_dict(delta.as_dict()).points == (
        coverage_from_delta(delta).points
    )


# ----------------------------------------------------------------------
# the map and corpus
# ----------------------------------------------------------------------
def test_map_records_only_novel_programs_in_corpus():
    cmap = CoverageMap()
    first = CoverageVector(frozenset({"rule:a", "rule:b"}))
    again = CoverageVector(frozenset({"rule:a"}))
    fresh = CoverageVector(frozenset({"rule:c"}))
    assert cmap.observe(first, 0, 100, ("arith",)) == {"rule:a", "rule:b"}
    assert cmap.observe(again, 1, 101, ("arith",)) == frozenset()
    assert cmap.observe(fresh, 2, 102, ("vector",)) == {"rule:c"}
    assert [entry.index for entry in cmap.corpus] == [0, 2]
    assert cmap.points == {"rule:a", "rule:b", "rule:c"}


def test_map_merge_unions_points_and_appends_corpus():
    left, right = CoverageMap(), CoverageMap()
    left.observe(CoverageVector(frozenset({"rule:a"})), 0, 1, ())
    right.observe(CoverageVector(frozenset({"rule:b"})), 1, 2, ())
    left.merge(right)
    assert left.points == {"rule:a", "rule:b"}
    assert len(left.corpus) == 2


def test_digest_is_order_independent():
    one, two = CoverageMap(), CoverageMap()
    a = CoverageVector(frozenset({"rule:a"}))
    b = CoverageVector(frozenset({"rule:b"}))
    one.observe(a), one.observe(b)
    two.observe(b), two.observe(a)
    assert one.digest() == two.digest()


# ----------------------------------------------------------------------
# the scheduler
# ----------------------------------------------------------------------
def test_scheduler_shifts_weight_away_from_saturated_family():
    scheduler = CoverageScheduler(("dry", "wet"))
    start = scheduler.weights()
    assert start["dry"] == start["wet"]  # optimistic, untried = equal
    for _ in range(6):
        scheduler.observe(("dry",), 0)   # never finds anything
        scheduler.observe(("wet",), 3)   # keeps finding coverage
    weights = scheduler.weights()
    assert weights["wet"] > weights["dry"]
    assert weights["dry"] < start["dry"]     # decayed
    assert weights["dry"] >= scheduler.floor  # but never starved


def test_scheduler_optimism_lets_untried_families_outweigh_dry_ones():
    scheduler = CoverageScheduler(("tried", "untried"))
    for _ in range(4):
        scheduler.observe(("tried",), 0)
    weights = scheduler.weights()
    assert weights["untried"] > weights["tried"]


def test_scheduler_is_deterministic():
    def run():
        scheduler = CoverageScheduler(("a", "b", "c"))
        for i in range(20):
            scheduler.observe(("a", "b") if i % 3 else ("c",), i % 4)
        return scheduler.digest()

    assert run() == run()


# ----------------------------------------------------------------------
# campaign-level determinism (same seed + shard count, any process mix)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("guided", [False, True])
def test_coverage_digests_identical_across_process_boundaries(guided):
    config = FuzzConfig(
        seed=9, count=16, shards=2, mutants=False,
        coverage=True, guided=guided,
    )
    sequential = run_fuzz(config, parallel=False)
    forked = run_fuzz(config, parallel=True)
    assert sequential.coverage["digest"] == forked.coverage["digest"]
    assert sequential.coverage["points"] == forked.coverage["points"]
    assert sequential.digest() == forked.digest()
    if guided:
        assert (
            sequential.coverage["family_weights"]
            == forked.coverage["family_weights"]
        )


def test_coverage_off_leaves_pinned_report_digest_unchanged():
    base = FuzzConfig(seed=5, count=10, mutants=False)
    covered = FuzzConfig(seed=5, count=10, mutants=False, coverage=True)
    assert run_fuzz(base).digest() != run_fuzz(covered).digest()
    # and the plain config's digest never mentions coverage at all
    assert run_fuzz(base).coverage is None


# ----------------------------------------------------------------------
# guidance pays: coverage uniform scheduling misses, at equal budget
# ----------------------------------------------------------------------
def test_guided_reaches_coverage_uniform_misses_at_equal_budget():
    seed, count = 42, 25
    uniform = run_shard(
        FuzzConfig(seed=seed, count=count, coverage=True, mutants=False), 0
    )
    guided = run_shard(
        FuzzConfig(seed=seed, count=count, guided=True, mutants=False), 0
    )
    uniform_points = uniform.coverage_map.points
    guided_points = guided.coverage_map.points
    only_guided = guided_points - uniform_points
    assert only_guided, (
        "guided scheduling found no coverage the uniform campaign missed"
    )
    # on the pinned seed the gap is substantial and total coverage grows
    assert len(only_guided) >= 10
    assert len(guided_points) > len(uniform_points)
    # and the guided run's final weights are not the static table
    assert guided.family_weights is not None
    assert len(set(guided.family_weights.values())) > 1
