"""Occurrence typing through pair fields (L-Update±, Figure 7 at work)."""

import pytest

from repro.checker.check import check_program_text
from repro.checker.errors import CheckError


def checks(src):
    check_program_text(src)
    return True


def fails(src):
    with pytest.raises(CheckError):
        check_program_text(src)
    return True


class TestFieldNarrowing:
    def test_fst_narrowing(self):
        assert checks(
            """
            (: f : (Pairof (U Int Str) Int) -> Int)
            (define (f p)
              (if (int? (fst p))
                  (+ (fst p) (snd p))
                  (snd p)))
            """
        )

    def test_snd_narrowing(self):
        assert checks(
            """
            (: f : (Pairof Int (U Int Bool)) -> Int)
            (define (f p)
              (if (int? (snd p)) (snd p) 0))
            """
        )

    def test_negative_field_information(self):
        assert checks(
            """
            (: f : (Pairof (U Int Str) Int) -> Int)
            (define (f p)
              (if (int? (fst p))
                  0
                  (string-length (fst p))))
            """
        )

    def test_nested_field_paths(self):
        assert checks(
            """
            (: f : (Pairof (Pairof (U Int Str) Int) Int) -> Int)
            (define (f p)
              (if (int? (fst (fst p)))
                  (+ (fst (fst p)) (snd p))
                  0))
            """
        )

    def test_no_test_no_narrowing(self):
        assert fails(
            """
            (: f : (Pairof (U Int Str) Int) -> Int)
            (define (f p) (+ (fst p) 1))
            """
        )

    def test_whole_pair_test(self):
        assert checks(
            """
            (: f : (U Int (Pairof Int Int)) -> Int)
            (define (f x)
              (if (pair? x)
                  (+ (fst x) (snd x))
                  x))
            """
        )


class TestPairRefinements:
    def test_field_participates_in_arithmetic(self):
        assert checks(
            """
            (: f : [p : (Pairof Int Int) #:where (< (fst p) (snd p))] -> Nat)
            (define (f p) (- (snd p) (fst p)))
            """
        )

    def test_field_refinement_enforced(self):
        assert fails(
            """
            (: f : (Pairof Int Int) -> Nat)
            (define (f p) (- (snd p) (fst p)))
            """
        )

    def test_caller_must_establish_field_refinement(self):
        base = """
        (: f : [p : (Pairof Int Int) #:where (< (fst p) (snd p))] -> Nat)
        (define (f p) (- (snd p) (fst p)))
        """
        assert checks(base + "(f (cons 1 2))")
        assert fails(base + "(f (cons 2 1))")

    def test_cons_objects_are_pairs(self):
        # ⟨o1, o2⟩ objects: (fst (cons a b)) normalises to a
        assert checks(
            """
            (: f : Nat -> Nat)
            (define (f n) (fst (cons n #t)))
            """
        )

    def test_bounds_through_pair_of_vec_and_index(self):
        assert checks(
            """
            (: f : [c : (Pairof (Vecof Int) Int)
                    #:where (and (<= 0 (snd c)) (< (snd c) (len (fst c))))]
               -> Int)
            (define (f c) (safe-vec-ref (fst c) (snd c)))
            """
        )

    def test_cursor_pair_needs_both_bounds(self):
        assert fails(
            """
            (: f : [c : (Pairof (Vecof Int) Int)
                    #:where (< (snd c) (len (fst c)))] -> Int)
            (define (f c) (safe-vec-ref (fst c) (snd c)))
            """
        )
