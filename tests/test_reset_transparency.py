"""Cache lifecycle transparency: reset, live sessions, persistence.

``Logic.reset_caches`` must leave the engine *semantically* fresh:
every verdict after a reset equals what a brand-new engine computes,
theory sessions handed out before the reset can never replay stale
memos, and an attached persistent cache is flushed and re-read rather
than trusted in memory.
"""

import pytest

from repro.batch import ProofCache, logic_config_key
from repro.checker.check import Checker
from repro.checker.errors import CheckError
from repro.fuzz.gen import generate_program
from repro.logic.env import Env
from repro.logic.prove import Logic
from repro.syntax.parser import parse_program
from repro.tr.objects import Var, obj_int
from repro.tr.props import lin_le


def _verdicts(checker: Checker, count: int = 25, seed: int = 5):
    out = []
    for index in range(count):
        spec = generate_program(seed, index)
        program = parse_program(spec.source)
        try:
            types = checker.check_program(program)
            out.append((True, sorted(types)))
        except CheckError as exc:
            out.append((False, str(exc)))
    return out


class TestResetTransparency:
    def test_fresh_and_reset_engines_agree_on_verdicts(self):
        # The satellite property: a reset engine is indistinguishable
        # from a fresh one across a generated corpus.
        warm = Logic()
        _verdicts(Checker(logic=warm))  # populate every cache
        warm.reset_caches()
        reset_verdicts = _verdicts(Checker(logic=warm))
        fresh_verdicts = _verdicts(Checker(logic=Logic()))
        assert reset_verdicts == fresh_verdicts

    def test_reset_clears_every_table(self):
        logic = Logic()
        _verdicts(Checker(logic=logic), count=3)
        assert logic._prove_cache and logic._sessions
        logic.reset_caches()
        assert not logic._prove_cache
        assert not logic._subtype_cache
        assert not logic._lookup_cache
        assert not logic._numeric_cache
        assert not logic._sessions

    def test_live_session_is_invalidated_not_replayed(self):
        logic = Logic()
        x = Var("x")
        env = logic.extend(Env(), lin_le(x, obj_int(5)))
        held = logic.theory_session(env)  # caller keeps the handle
        assert held.entails(lin_le(x, obj_int(6)))
        logic.reset_caches()
        # the held session's memo is gone: answers are recomputed
        assert not held._memo
        # and the engine will not serve the stale handle again
        assert logic.theory_session(env) is not held

    def test_sessions_refresh_across_multiple_resets(self):
        logic = Logic()
        env = logic.extend(Env(), lin_le(Var("x"), obj_int(5)))
        first = logic.theory_session(env)
        logic.reset_caches()
        second = logic.theory_session(env)
        logic.reset_caches()
        third = logic.theory_session(env)
        assert first is not second and second is not third
        # same env, same answers, regardless of generation
        goal = lin_le(Var("x"), obj_int(9))
        assert first.entails(goal) == second.entails(goal) == third.entails(goal)

    def test_reset_flushes_and_drops_persistent_handle(self, tmp_path):
        logic = Logic()
        cache = ProofCache(str(tmp_path), logic_config_key(logic))
        logic.attach_persistent_cache(cache)
        env = logic.extend(Env(), lin_le(Var("x"), obj_int(5)))
        assert logic.proves(env, lin_le(Var("x"), obj_int(6)))
        assert cache.delta()  # verdict recorded but unflushed
        logic.reset_caches()
        assert not cache.delta()  # flushed to disk
        reopened = ProofCache(str(tmp_path), logic_config_key(logic))
        assert len(reopened) > 0

    def test_verdicts_identical_with_and_without_persistence(self, tmp_path):
        plain = _verdicts(Checker(logic=Logic()), count=15)
        cached_logic = Logic()
        cache = ProofCache(str(tmp_path), logic_config_key(cached_logic))
        cached_logic.attach_persistent_cache(cache)
        first = _verdicts(Checker(logic=cached_logic), count=15)
        cache.flush()
        # a separate engine reading the persisted verdicts agrees too
        reader_logic = Logic()
        reader_logic.attach_persistent_cache(
            ProofCache(str(tmp_path), logic_config_key(reader_logic))
        )
        second = _verdicts(Checker(logic=reader_logic), count=15)
        assert first == plain
        assert second == plain
        assert reader_logic.stats.persist_hits > 0
