"""Campaign evidence: the RTR-005 survived-audit entry, pinned.

The PR 7 campaign ran the fast-vs-legacy solver differential across
thousands of programs with zero verdict divergences
(``benchmark-results/fuzz_campaign.json`` holds the full run).  These
tests re-run a fixed slice of that campaign so the evidence stays
live: the slice must remain divergence-free and must reproduce the
committed digests exactly — a changed digest means the slice no
longer checks what the audit checked.
"""

import json
from pathlib import Path

import pytest

from repro.fuzz import FuzzConfig, run_fuzz

REPO = Path(__file__).resolve().parent.parent

#: the audited slice (seed 2016 of the campaign), frozen with its
#: digests — byte-identical across any shard/process layout of 2
PINNED_SLICE = FuzzConfig(
    seed=2016, count=80, shards=2, mutants=False,
    solver_oracle=True, coverage=True,
)
PINNED_DIGEST = "e0ada89d5e2fc5fad4c81a4e38b9119abdf2d0955d68ffb22f8f49ffef758c30"
PINNED_COVERAGE_DIGEST = (
    "ec86fdbd86a9204cd106f2d0f9e43eaf494835fcc8b3c896dd7298ff4d62ea89"
)


def test_solver_oracle_campaign_no_divergence():
    report = run_fuzz(PINNED_SLICE)
    divergences = [v for v in report.violations if v.oracle == "solver"]
    assert not divergences, "\n".join(v.describe() for v in divergences)
    assert report.ok
    assert report.digest() == PINNED_DIGEST
    assert report.coverage["digest"] == PINNED_COVERAGE_DIGEST


def test_campaign_artifact_is_committed_and_clean():
    """The committed campaign summary backs the survived-audit entries."""
    artifact = REPO / "benchmark-results" / "fuzz_campaign.json"
    assert artifact.exists(), "campaign artifact missing"
    summary = json.loads(artifact.read_text())
    assert summary["total_generated_programs"] >= 5000
    solver_runs = [
        run for run in summary["runs"] if run.get("solver_oracle")
    ]
    assert solver_runs, "campaign must include solver-oracle runs"
    assert all(run["violations"] == 0 for run in solver_runs)
    farm_runs = [run for run in summary["runs"] if run["mode"] == "farm"]
    assert farm_runs, "campaign must include a farm run"
    assert all(run["divergences"] == 0 for run in farm_runs)


@pytest.mark.fuzz
def test_campaign_slice_scaled():
    """CI farm job: a larger seed sweep of the same differential."""
    for seed in (0, 42):
        report = run_fuzz(
            FuzzConfig(seed=seed, count=150, shards=2, mutants=False,
                       solver_oracle=True)
        )
        assert report.ok, "\n".join(v.describe() for v in report.violations)
