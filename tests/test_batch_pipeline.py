"""The multi-process batch checker and its persistent proof cache.

The contract under test: ``check_many`` produces verdicts identical to
sequential checking no matter how work is sharded or cached, merges
worker statistics exactly, and the on-disk cache is verdict-
transparent across runs.
"""

import os

import pytest

from repro.batch import ProofCache, check_many, env_digest, logic_config_key
from repro.fuzz.gen import generate_program
from repro.logic.env import Env
from repro.logic.prove import Logic
from repro.tr.objects import Var
from repro.tr.props import IsType, lin_le
from repro.tr.types import INT

GOOD = """
(: max : [x : Int] [y : Int]
   -> [z : Int #:where (and (>= z x) (>= z y))])
(define (max x y) (if (> x y) x y))
(max 3 7)
"""

BAD = """
(: f : Int -> Bool)
(define (f x) x)
"""


@pytest.fixture
def corpus(tmp_path):
    """A mixed corpus: generated modules plus one known-bad module."""
    paths = []
    for index in range(14):
        spec = generate_program(3, index)
        path = tmp_path / f"gen{index:02}.rkt"
        path.write_text(spec.source)
        paths.append(str(path))
    good = tmp_path / "good.rkt"
    good.write_text(GOOD)
    bad = tmp_path / "bad.rkt"
    bad.write_text(BAD)
    paths.extend([str(good), str(bad)])
    return paths


def _summary(report):
    return [(v.path, v.ok, v.error) for v in report.verdicts]


class TestCheckMany:
    def test_parallel_verdicts_identical_to_sequential(self, corpus):
        sequential = check_many(corpus, jobs=1, logic=Logic())
        parallel = check_many(corpus, jobs=4)
        assert _summary(parallel) == _summary(sequential)
        assert not sequential.ok  # bad.rkt fails
        assert len(sequential.failures) == 1

    def test_verdicts_come_back_in_input_order(self, corpus):
        report = check_many(list(reversed(corpus)), jobs=3)
        assert [v.path for v in report.verdicts] == list(reversed(corpus))

    def test_worker_stats_merge_covers_all_work(self, corpus):
        sequential = check_many(corpus, jobs=1, logic=Logic())
        parallel = check_many(corpus, jobs=4)
        # Fresh per-worker engines do exactly the sequential work, just
        # partitioned — the merged counters must account for all of it.
        assert parallel.stats.prove_calls == sequential.stats.prove_calls
        assert parallel.stats.theory_goals == sequential.stats.theory_goals

    def test_missing_file_is_a_verdict_not_a_crash(self, tmp_path):
        report = check_many([str(tmp_path / "absent.rkt")], jobs=1, logic=Logic())
        assert not report.ok
        assert "cannot read" in report.verdicts[0].error

    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError):
            check_many([], jobs=0)

    def test_custom_logic_is_never_swapped_for_the_default(self, corpus):
        # A caller-supplied engine cannot cross the fork boundary, so
        # jobs>1 with an explicit logic must run through that engine
        # (in-process) rather than silently using default workers.
        engine = Logic(use_representatives=False)
        report = check_many(corpus, jobs=4, logic=engine)
        assert report.stats.prove_calls == engine.stats.prove_calls
        assert engine.stats.prove_calls > 0


class TestPersistentCache:
    def test_cache_is_verdict_transparent(self, corpus, tmp_path):
        cache_dir = str(tmp_path / "cache")
        cold = check_many(corpus, jobs=2, cache_dir=cache_dir)
        warm = check_many(corpus, jobs=2, cache_dir=cache_dir)
        plain = check_many(corpus, jobs=1, logic=Logic())
        assert _summary(cold) == _summary(plain)
        assert _summary(warm) == _summary(plain)
        assert cold.cache_entries_written > 0
        assert all(v.from_cache for v in warm.verdicts)

    def test_cache_survives_runs_on_disk(self, corpus, tmp_path):
        cache_dir = str(tmp_path / "cache")
        check_many(corpus, jobs=1, logic=Logic(), cache_dir=cache_dir)
        store = ProofCache(cache_dir, logic_config_key(Logic()))
        assert len(store) > 0

    def test_theory_parameters_change_the_namespace(self):
        # A different bitvector width or linear work bound changes
        # verdicts (groundability / UNKNOWN cutoffs); the cache key
        # must not collapse the two configurations.
        from repro.theories.bitvec import BitvectorTheory
        from repro.theories.congruence import CongruenceTheory
        from repro.theories.linarith import LinearArithmeticTheory
        from repro.theories.registry import TheoryRegistry

        def key(width, bound):
            registry = TheoryRegistry(
                [LinearArithmeticTheory(bound), BitvectorTheory(width),
                 CongruenceTheory()]
            )
            return logic_config_key(Logic(registry=registry))

        assert key(8, 6000) != key(16, 6000)
        assert key(8, 6000) != key(8, 100)
        assert key(8, 6000) == key(8, 6000)

    def test_config_namespaces_do_not_mix(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        first = ProofCache(cache_dir, "config-a")
        second = ProofCache(cache_dir, "config-b")
        source = "(+ 1 2)"
        # Every key embeds the configuration namespace...
        assert first.program_key(source) != second.program_key(source)
        # ...so two configurations share one directory without either
        # serving (or wiping) the other's entries.
        first.put_program(first.program_key(source), True, "", {})
        first.flush()
        reread_a = ProofCache(cache_dir, "config-a")
        reread_b = ProofCache(cache_dir, "config-b")
        assert reread_a.get_program(reread_a.program_key(source)) is not None
        assert reread_b.get_program(reread_b.program_key(source)) is None

    def test_delta_absorb_flush_roundtrip(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        worker = ProofCache(cache_dir, "k")
        key = worker.program_key("(+ 1 2)")
        worker.put_program(key, True, "", {"f": "Int"})
        delta = worker.delta()
        parent = ProofCache(cache_dir, "k")
        parent.absorb(delta)
        assert parent.flush() == 1
        reopened = ProofCache(cache_dir, "k")
        assert reopened.get_program(key) == (True, "", {"f": "Int"})


class TestEnvDigest:
    def test_equal_content_equal_digest_any_build_order(self):
        logic = Logic()
        x, y = Var("x"), Var("y")
        one = logic.extend(logic.extend(Env(), IsType(x, INT)), IsType(y, INT))
        two = logic.extend(logic.extend(Env(), IsType(y, INT)), IsType(x, INT))
        assert env_digest(one) == env_digest(two)

    def test_different_content_different_digest(self):
        logic = Logic()
        x = Var("x")
        base = logic.extend(Env(), IsType(x, INT))
        more = logic.extend(base, lin_le(x, Var("y")))
        assert env_digest(base) != env_digest(more)

    def test_digest_is_stable_across_processes(self, tmp_path):
        # The digest must be a pure function of content: compute it in
        # a subprocess and compare (intern ids would differ there).
        import subprocess
        import sys

        script = (
            "from repro.batch import env_digest\n"
            "from repro.logic.env import Env\n"
            "from repro.logic.prove import Logic\n"
            "from repro.tr.objects import Var\n"
            "from repro.tr.props import IsType\n"
            "from repro.tr.types import INT\n"
            "logic = Logic()\n"
            "env = logic.extend(Env(), IsType(Var('x'), INT))\n"
            "print(env_digest(env))\n"
        )
        src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env={**os.environ, "PYTHONPATH": src},
            check=True,
        ).stdout.strip()
        logic = Logic()
        local = env_digest(logic.extend(Env(), IsType(Var("x"), INT)))
        assert out == local
