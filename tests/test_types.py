"""Tests for the type grammar and union normal form."""

from repro.tr.objects import Var, obj_int
from repro.tr.parse import BYTE, NAT
from repro.tr.props import lin_le
from repro.tr.results import TypeResult
from repro.tr.types import (
    BOOL,
    BOT,
    FALSE,
    INT,
    STR,
    TOP,
    TRUE,
    VOID,
    Fun,
    Pair,
    Poly,
    Refine,
    TVar,
    Union,
    Vec,
    make_union,
    union_members,
)


class TestUnionNormalForm:
    def test_empty_is_bot(self):
        assert make_union([]) == BOT

    def test_singleton_collapses(self):
        assert make_union([INT]) == INT

    def test_flattening(self):
        nested = make_union([INT, make_union([TRUE, FALSE])])
        assert isinstance(nested, Union)
        assert set(nested.members) == {INT, TRUE, FALSE}

    def test_dedup(self):
        assert make_union([INT, INT]) == INT

    def test_top_absorbs(self):
        assert make_union([INT, TOP]) == TOP

    def test_bool_definition(self):
        assert BOOL == Union((TRUE, FALSE))
        assert make_union([TRUE, FALSE]) == BOOL

    def test_union_members_of_non_union(self):
        assert union_members(INT) == (INT,)

    def test_union_members_of_union(self):
        assert union_members(BOOL) == (TRUE, FALSE)

    def test_order_preserved(self):
        u = make_union([INT, STR, VOID])
        assert u.members == (INT, STR, VOID)


class TestStructure:
    def test_fun_accessors(self):
        fun = Fun((("x", INT), ("y", BOOL)), TypeResult(INT))
        assert fun.arity == 2
        assert fun.arg_names() == ("x", "y")
        assert fun.arg_types() == (INT, BOOL)

    def test_types_are_hashable(self):
        types = {INT, BOOL, Pair(INT, INT), Vec(INT), NAT, BYTE, TVar("A")}
        assert len(types) == 7

    def test_equal_refinements_are_equal(self):
        a = Refine("n", INT, lin_le(obj_int(0), Var("n")))
        assert a == NAT

    def test_repr_round_shapes(self):
        assert repr(INT) == "Int"
        assert repr(BOOL) == "Bool"
        assert repr(BOT) == "Bot"
        assert "Vecof" in repr(Vec(INT))
        assert "Pairof" in repr(Pair(INT, BOOL))
        assert "All" in repr(Poly(("A",), Vec(TVar("A"))))

    def test_nat_is_refinement_of_int(self):
        assert isinstance(NAT, Refine)
        assert NAT.base == INT

    def test_byte_is_refinement_of_int(self):
        assert isinstance(BYTE, Refine)
        assert BYTE.base == INT
