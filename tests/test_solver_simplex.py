"""Property tests for the incremental dual simplex core.

Three invariant families from the Dutertre–de Moura design:

* **tableau invariants** — β satisfies every row equation exactly
  (integer rows with per-row denominators, so the identity is
  ``den·β[basic] == Σ coeff·β[nonbasic]`` over exact rationals), and
  after a SAT check every variable sits inside its bounds;
* **push/pop** — retracting a frame restores the bounds maps exactly,
  and the goal-form LRU keeps the tableau from growing without bound
  over a stream of distinct goals;
* **agreement** — never less precise than the Fourier-Motzkin
  reference on random small systems, and strictly-more-precise
  verdicts are confirmed against a brute-force integer grid.
"""

import itertools
import random

from hypothesis import given, settings, strategies as st

from repro.solvers.linform import SAT, UNKNOWN, UNSAT, Constraint
from repro.solvers.reference import fm_entails, fm_satisfiable
from repro.solvers.simplex import GOAL_FORM_CACHE, Simplex


def c(coeffs, const):
    return Constraint.make(coeffs, const)


ATOMS = ["x", "y", "z"]


def constraints_strategy(max_cons=6):
    coeff = st.integers(min_value=-3, max_value=3)
    one = st.builds(
        lambda pairs, const: c(
            {a: v for a, v in zip(ATOMS, pairs) if v}, const
        ),
        st.tuples(coeff, coeff, coeff),
        st.integers(min_value=-8, max_value=8),
    )
    return st.lists(one, min_size=1, max_size=max_cons)


def ingest(sx, constraints):
    """Assert every constraint; False when a conflict was detected."""
    for con in constraints:
        con = con.normalized()
        if con.is_trivial():
            continue
        if con.is_contradiction() or not sx.assert_constraint(con):
            return False
    return True


def holds_at(con, point):
    total = con.const
    for atom, coeff in con.coeffs:
        total += coeff * point[atom]
    return total <= 0


def integer_point_exists(constraints, radius=12):
    grid = range(-radius, radius + 1)
    return any(
        all(holds_at(con, dict(zip(ATOMS, pt))) for con in constraints)
        for pt in itertools.product(grid, repeat=len(ATOMS))
    )


def assert_tableau_invariants(sx):
    # every row equation holds exactly under β
    for basic, row in sx._rows.items():
        lhs = sx._dens[basic] * sx._beta[basic]
        rhs = sum(num * sx._beta[var] for var, num in row.items())
        assert lhs == rhs, f"row of {basic} violated: {lhs} != {rhs}"
    # the column index mirrors the rows
    derived = {}
    for basic, row in sx._rows.items():
        for var in row:
            derived.setdefault(var, set()).add(basic)
    for var, basics in derived.items():
        assert basics <= sx._cols.get(var, set())
    for var, basics in sx._cols.items():
        assert basics <= derived.get(var, set()) | set()
    # no basic variable appears as a column of another row
    for basic in sx._rows:
        for other, row in sx._rows.items():
            assert basic not in row, f"basic {basic} in row of {other}"
    # row denominators are positive and GCD-reduced
    for basic, row in sx._rows.items():
        den = sx._dens[basic]
        assert den > 0
        g = den
        for num in row.values():
            g = __import__("math").gcd(g, num)
        assert g == 1 or not row


class TestTableauInvariants:
    @settings(max_examples=150, deadline=None)
    @given(constraints_strategy())
    def test_rows_hold_under_beta_after_check(self, constraints):
        sx = Simplex()
        if not ingest(sx, constraints):
            return
        verdict = sx.check_integer()
        assert_tableau_invariants(sx)
        if verdict == SAT:
            # after SAT every variable respects its bounds
            for var, bound in sx._lower.items():
                assert sx._beta[var] >= bound
            for var, bound in sx._upper.items():
                assert sx._beta[var] <= bound

    @settings(max_examples=100, deadline=None)
    @given(constraints_strategy(), constraints_strategy(max_cons=3))
    def test_invariants_survive_goal_streams(self, base, goals):
        sx = Simplex()
        if not ingest(sx, base):
            return
        sx.check_integer()
        for goal in goals:
            sx.entails(goal)
            assert_tableau_invariants(sx)


class TestPushPop:
    @settings(max_examples=100, deadline=None)
    @given(constraints_strategy(), constraints_strategy(max_cons=3))
    def test_pop_restores_bounds_exactly(self, base, extra):
        sx = Simplex()
        if not ingest(sx, base):
            return
        sx.check_integer()
        lower_before = dict(sx._lower)
        upper_before = dict(sx._upper)
        conflict_before = sx.in_conflict
        sx.push()
        ingest(sx, extra)
        sx.check_integer()
        sx.pop()
        assert sx._lower == lower_before
        assert sx._upper == upper_before
        assert sx.in_conflict == conflict_before
        assert_tableau_invariants(sx)

    def test_pop_without_push_raises(self):
        try:
            Simplex().pop()
        except IndexError:
            pass
        else:
            raise AssertionError("pop on level 0 must raise")

    def test_verdicts_repeat_after_pop(self):
        # the same query answered before and after an unrelated
        # push/pop bracket must not change
        sx = Simplex()
        assert ingest(sx, [c({"x": 1, "y": -1}, 0), c({"y": 1}, -9)])
        goal = c({"x": 1}, -9)
        first = sx.entails(goal)
        sx.push()
        assert sx.assert_constraint(c({"x": -1}, 3).normalized())
        sx.check_integer()
        sx.pop()
        assert sx.entails(goal) == first is True

    def test_goal_form_cache_bounds_tableau(self):
        sx = Simplex()
        assert ingest(
            sx, [c({f"a{i}": 1, f"a{i+1}": -1}, 0) for i in range(6)]
        )
        assert sx.check_integer() == SAT
        base_rows = len(sx._rows)
        # 200 goals over distinct fresh forms — far beyond the LRU cap
        for k in range(200):
            sx.entails(c({f"a{k % 7}": 1, f"g{k}": 1}, -5))
        assert len(sx._rows) <= base_rows + GOAL_FORM_CACHE + 1
        assert_tableau_invariants(sx)


class TestAgreementWithFM:
    @settings(max_examples=200, deadline=None)
    @given(constraints_strategy())
    def test_satisfiability_agreement(self, constraints):
        fm = fm_satisfiable(constraints)
        sx = Simplex()
        verdict = UNSAT if not ingest(sx, constraints) else sx.check_integer()
        if fm == UNSAT:
            # FM refutations are integer-sound; simplex must refute too
            assert verdict == UNSAT
        elif fm == SAT and verdict == UNSAT:
            # simplex claims *integer* infeasibility beyond FM's
            # rational reasoning — confirm against the grid
            assert not integer_point_exists(constraints)

    @settings(max_examples=200, deadline=None)
    @given(
        constraints_strategy(),
        st.tuples(
            st.integers(min_value=-2, max_value=2),
            st.integers(min_value=-2, max_value=2),
            st.integers(min_value=-2, max_value=2),
        ),
        st.integers(min_value=-6, max_value=6),
    )
    def test_entailment_superset_of_fm(self, constraints, goal_coeffs, const):
        goal = c({a: v for a, v in zip(ATOMS, goal_coeffs) if v}, const)
        fm = fm_entails(constraints, goal)
        sx = Simplex()
        proved = True if not ingest(sx, constraints) else sx.entails(goal)
        if fm:
            assert proved, f"FM proved {goal} but simplex did not"
        if proved and not fm:
            # extra precision must still be semantically valid: no
            # integer model of Γ may violate the goal
            grid = range(-12, 13)
            for pt in itertools.product(grid, repeat=len(ATOMS)):
                point = dict(zip(ATOMS, pt))
                if all(holds_at(con, point) for con in constraints):
                    assert holds_at(goal, point), (
                        f"unsound entailment of {goal} at {point}"
                    )

    def test_unknown_budget_is_conservative(self):
        # starving the pivot budget must degrade to "not proved",
        # never to a wrong refutation
        chain = [c({f"v{i}": 1, f"v{i+1}": -1}, 1) for i in range(10)]
        sx = Simplex()
        assert ingest(sx, chain)
        assert sx.check(max_pivots=0) in (SAT, UNKNOWN)


class TestCloneIsolation:
    def test_clone_shares_nothing_mutable(self):
        sx = Simplex()
        assert ingest(sx, [c({"x": 1, "y": -1}, 0), c({"y": 1}, -5)])
        assert sx.check_integer() == SAT
        dup = sx.clone()
        dup.push()
        # y ≥ 100 contradicts the asserted y ≤ 5 at assert time
        assert dup.assert_constraint(c({"y": -1}, 100).normalized()) is False
        assert dup.in_conflict and not sx.in_conflict
        dup.pop()
        # deep structures are independent
        assert dup._rows == sx._rows and dup._rows is not sx._rows
        for basic in dup._rows:
            assert dup._rows[basic] is not sx._rows[basic]
        assert dup.entails(c({"x": 1}, -5)) == sx.entails(c({"x": 1}, -5))

    def test_counters_cumulative_and_copied(self):
        sx = Simplex()
        assert ingest(sx, [c({"x": 1, "y": -1}, 0), c({"y": 1}, -5)])
        sx.entails(c({"x": 1}, -5))
        snapshot = sx.counters()
        assert set(snapshot) == {
            "simplex.pivots",
            "simplex.checks",
            "simplex.branches",
        }
        dup = sx.clone()
        dup.entails(c({"x": 1}, -4))
        assert dup.counters()["simplex.checks"] >= snapshot["simplex.checks"]
        assert sx.counters() == snapshot
