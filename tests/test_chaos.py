"""Tests for the chaos harness (repro/chaos/).

The full seven-scenario campaign is CI's ``chaos-smoke`` job; here a
fast subset pins the harness machinery itself — scenarios recover,
reports are reproducible, configuration is validated, and the CLI
plumbing returns the right exit codes.
"""

import json

import pytest

from repro.chaos import SCENARIOS, ChaosConfig, run_chaos

#: fast scenarios (no deliberate multi-second stalls) for harness tests
FAST = ["worker_kill", "torn_cache_shard", "client_disconnect"]


class TestCampaign:
    def test_fast_scenarios_recover(self):
        report = run_chaos(
            ChaosConfig(seed=11, scenarios=FAST, workload_count=2)
        )
        assert report.ok
        assert [r.name for r in report.results] == FAST
        for result in report.results:
            assert result.details.get("engine_alive") is True
            assert result.details.get("connections_drained") is True
            assert result.details.get("workload_verified") == 2

    def test_report_digest_is_reproducible(self):
        config = ChaosConfig(
            seed=11, scenarios=["client_disconnect"], workload_count=2
        )
        first, second = run_chaos(config), run_chaos(config)
        assert first.digest() == second.digest()
        assert first.ok and second.ok

    def test_report_as_dict_shape(self):
        report = run_chaos(
            ChaosConfig(seed=11, scenarios=["client_disconnect"],
                        workload_count=2)
        )
        summary = report.as_dict()
        json.dumps(summary)  # must be serialisable as the CI artifact
        assert summary["ok"] is True
        assert summary["passed"] == 1 and summary["failed"] == 0
        assert summary["scenarios"][0]["name"] == "client_disconnect"
        assert "digest" in summary

    def test_worker_kill_exercises_fallback_and_respawn(self):
        report = run_chaos(
            ChaosConfig(seed=11, scenarios=["worker_kill"], workload_count=2)
        )
        assert report.ok
        details = report.results[0].details
        assert details["fell_back_in_process"] is True
        assert details["pool_respawned"] is True

    def test_lane_kill_respawns_and_survivors_serve(self):
        report = run_chaos(
            ChaosConfig(seed=11, scenarios=["lane_kill"], workload_count=2)
        )
        assert report.ok, report.results[0].error
        details = report.results[0].details
        assert details["survivors_served"] == 2
        assert details["lane_restarts"] >= 1
        assert details["respawned_lane_serves"] is True
        # the three affinity keys cover the three lanes
        assert sorted(details["affinity_keys"]) == ["0", "1", "2"]

    def test_torn_cache_shard_counts_and_repairs(self):
        report = run_chaos(
            ChaosConfig(seed=11, scenarios=["torn_cache_shard"],
                        workload_count=2)
        )
        assert report.ok
        details = report.results[0].details
        assert details["cache_shards_skipped"] >= 1
        assert details["repaired"] is True


class TestConfig:
    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown chaos scenarios"):
            ChaosConfig(scenarios=["no_such_fault"]).scenario_names()

    def test_default_runs_all_in_order(self):
        assert ChaosConfig().scenario_names() == list(SCENARIOS)

    def test_scenario_registry_is_complete(self):
        assert set(SCENARIOS) == {
            "worker_kill", "torn_cache_shard", "hung_goal",
            "client_disconnect", "reset_storm", "overload_shed",
            "lane_kill",
        }


class TestCli:
    def test_chaos_command_smoke(self, capsys):
        from repro.__main__ import main

        status = main([
            "chaos", "--seed", "11", "--scenario", "client_disconnect",
            "--workload", "2", "--json", "-",
        ])
        out = capsys.readouterr().out
        assert status == 0
        assert "chaos[client_disconnect] PASS" in out

    def test_chaos_list(self, capsys):
        from repro.__main__ import main

        assert main(["chaos", "--list"]) == 0
        out = capsys.readouterr().out
        for name in SCENARIOS:
            assert name in out

    def test_chaos_unknown_scenario_is_a_usage_error(self, capsys):
        from repro.__main__ import main

        assert main(["chaos", "--scenario", "nope"]) == 1
