"""The differential fuzzing subsystem: oracles, regression corpus, shrinking.

The heart of this module is a pinned-seed regression corpus: 200
generated programs (plus their ill-typed mutants) run through all three
soundness oracles.  Any change to the checker, interpreter, model
relation, generator or mutation engine that breaks an oracle shows up
here deterministically.
"""

import pytest

from repro.checker.check import Checker
from repro.fuzz import (
    FuzzConfig,
    Mutant,
    ProgramSpec,
    fresh_checker_factory,
    generate_program,
    program_seed,
    refinement_blind_factory,
    run_fuzz,
    run_program_oracles,
    shrink,
)
from repro.fuzz.gen import FAMILIES
from repro.fuzz.runner import violation_predicate
from repro.interp.eval import run_program
from repro.interp.values import UnsafeMemoryError
from repro.syntax.parser import parse_program

#: the pinned regression seed — change it only on purpose
REGRESSION_SEED = 20260729
REGRESSION_COUNT = 200


@pytest.fixture(scope="module")
def regression_report():
    config = FuzzConfig(
        seed=REGRESSION_SEED,
        count=REGRESSION_COUNT,
        shards=1,
        max_mutants=2,
        shrink_failures=False,
    )
    return run_fuzz(config)


class TestRegressionCorpus:
    def test_no_soundness_violations(self, regression_report):
        assert regression_report.violations == ()

    def test_every_program_accepted_and_evaluated(self, regression_report):
        assert regression_report.programs == REGRESSION_COUNT
        assert regression_report.accepted == REGRESSION_COUNT
        assert regression_report.evaluated == REGRESSION_COUNT

    def test_model_oracle_exercised(self, regression_report):
        # value definitions make the model oracle judge real refinements
        assert regression_report.model_checked > REGRESSION_COUNT

    def test_all_mutants_rejected(self, regression_report):
        assert regression_report.mutants_checked > 0
        assert (
            regression_report.mutants_rejected
            == regression_report.mutants_checked
        )

    def test_every_family_covered(self, regression_report):
        assert set(regression_report.features) == set(FAMILIES)


class TestDeterminism:
    def test_program_seed_is_pure(self):
        assert program_seed(42, 7) == program_seed(42, 7)
        assert program_seed(42, 7) != program_seed(42, 8)
        assert program_seed(42, 7) != program_seed(43, 7)

    def test_generation_is_reproducible(self):
        a = generate_program(REGRESSION_SEED, 3)
        b = generate_program(REGRESSION_SEED, 3)
        assert a.source == b.source
        assert a.mutants == b.mutants

    def test_report_digest_shard_invariant(self):
        base = FuzzConfig(seed=5, count=24, shards=1, shrink_failures=False)
        sharded = FuzzConfig(seed=5, count=24, shards=3, shrink_failures=False)
        a = run_fuzz(base)
        b = run_fuzz(sharded, parallel=False)
        assert a.digest() == b.digest()


def _spec(source, mutants=()):
    """A hand-built ProgramSpec for oracle unit tests."""
    return ProgramSpec(
        index=0,
        seed=0,
        source=source,
        features=("handmade",),
        defines=(),
        mutants=tuple(mutants),
    )


class TestOracleUnits:
    def test_generator_oracle_flags_rejected_base_program(self):
        outcome = run_program_oracles(
            _spec("(: f : Int -> Bool)\n(define (f x) x)\n")
        )
        assert [v.oracle for v in outcome.violations] == ["generator"]

    def test_eval_oracle_flags_dynamic_error(self):
        # well-typed (vec-ref is statically Int-indexed) but crashes
        outcome = run_program_oracles(_spec("(vec-ref (vector 1 2) 9)\n"))
        assert [v.oracle for v in outcome.violations] == ["eval"]
        assert outcome.accepted and not outcome.evaluated

    def test_model_oracle_flags_uninhabited_type(self):
        # under the refinement-blind checker, (f -5) : Nat — but the
        # runtime value is -5, which does not inhabit Nat
        source = (
            "(: f : [n : Nat] -> Nat)\n(define (f n) n)\n(define r (f -5))\n"
        )
        outcome = run_program_oracles(_spec(source), refinement_blind_factory)
        assert "model" in {v.oracle for v in outcome.violations}

    def test_reject_oracle_flags_accepted_mutant(self):
        # a "mutant" that is actually well-typed simulates a checker
        # (or mutation-engine) bug: it must be reported, not ignored
        good = "(+ 1 2)\n"
        bad_mutant = Mutant(source=good, kind="call-arg-type",
                            target="f", family="arith")
        outcome = run_program_oracles(_spec(good, [bad_mutant]))
        assert [v.oracle for v in outcome.violations] == ["reject"]
        assert outcome.mutants_checked == 1
        assert outcome.mutants_rejected == 0

    def test_clean_program_has_no_violations(self):
        outcome = run_program_oracles(
            _spec("(: f : Int -> Int)\n(define (f x) (+ x 1))\n(define r (f 1))\n")
        )
        assert outcome.violations == []
        assert outcome.model_checked >= 1


class TestShrinker:
    def test_drops_irrelevant_top_level_forms(self):
        source = (
            "(: f : Int -> Int)\n(define (f x) (+ x 1))\n"
            "(: g : Int -> Int)\n(define (g x) (* x 2))\n"
            "(vec-ref (vector 1) 5)\n"
        )
        result = shrink(source, lambda s: "vec-ref" in s)
        lines = result.strip().splitlines()
        assert len(lines) == 1
        assert "vec-ref" in lines[0]
        assert "define" not in result

    def test_simplifies_subexpressions(self):
        source = "(+ (* 3 (min 4 5)) (vec-ref (vector 1 2) 9))\n"
        result = shrink(source, lambda s: "vec-ref" in s)
        # the arithmetic context around the witness must be gone
        assert "min" not in result and "*" not in result

    def test_returns_input_when_nothing_smaller_fails(self):
        source = "(vec-ref (vector 1) 5)\n"
        result = shrink(source, lambda s: s.strip() == source.strip())
        assert result.strip() == source.strip()

    def test_deterministic(self):
        source = (
            "(: f : Int -> Int)\n(define (f x) (+ x 1))\n"
            "(+ (f 1) (vec-ref (vector 1) 5))\n"
        )
        predicate = lambda s: "vec-ref" in s
        assert shrink(source, predicate) == shrink(source, predicate)

    def test_respects_check_budget(self):
        calls = []

        def predicate(s):
            calls.append(s)
            return "vec-ref" in s

        shrink("(+ 1 (vec-ref (vector 1 2 3) 9))\n", predicate, max_checks=7)
        assert len(calls) <= 7

    def test_shrinks_real_eval_violation(self):
        """End-to-end: a crashing accepted program minimises sharply."""
        source = (
            "(: f : Int -> Int)\n(define (f x) (+ x 1))\n"
            "(define a (f 3))\n"
            "(define b (vec-ref (vector 1 2) 9))\n"
            "(+ a b)\n"
        )
        spec = _spec(source)
        outcome = run_program_oracles(spec)
        (violation,) = outcome.violations
        predicate = violation_predicate(violation, fresh_checker_factory)
        result = shrink(source, predicate)
        assert len(result.strip().splitlines()) <= 2
        assert "vec-ref" in result


class TestInjectedBugDemo:
    """The acceptance demo: an unsound checker is caught and the
    counterexample shrinks to a ≤10-line program."""

    @pytest.fixture(scope="class")
    def blind_report(self):
        config = FuzzConfig(
            seed=42, count=30, shards=1, checker="blind", max_shrinks=0
        )
        return run_fuzz(config, factory=refinement_blind_factory)

    def test_bug_is_caught(self, blind_report):
        assert not blind_report.ok
        assert blind_report.soundness_violations

    def test_guard_mutants_slip_through_the_blind_checker(self, blind_report):
        kinds = {v.kind for v in blind_report.violations}
        assert kinds & {"guard-drop", "guard-weaken"}

    def test_crash_witness_shrinks_to_small_counterexample(self, blind_report):
        crashed = [
            v for v in blind_report.violations
            if v.oracle == "reject" and "crashed" in v.message
        ]
        assert crashed, "expected an accepted mutant that crashes at runtime"
        violation = crashed[0]
        predicate = violation_predicate(
            violation, refinement_blind_factory, fresh_checker_factory
        )
        minimal = shrink(violation.source, predicate)
        lines = [l for l in minimal.strip().splitlines() if l.strip()]
        assert len(lines) <= 10
        # the shrunk program is a genuine differential witness:
        blind = refinement_blind_factory()
        program = parse_program(minimal)
        blind.check_program(program)          # unsound checker accepts
        with pytest.raises(Exception):
            fresh_checker_factory().check_program(parse_program(minimal))
        with pytest.raises(Exception):
            run_program(program)              # and it really goes wrong
