"""Tests for the core typing judgment (Figure 4) on simple forms."""

import pytest

from repro.checker.check import Checker, check_program_text
from repro.checker.errors import (
    ArityError,
    CheckError,
    UnboundVariable,
    UnsupportedFeature,
)
from repro.logic.env import Env
from repro.syntax.parser import parse_expr_text, parse_program
from repro.tr.objects import LinExpr, Var
from repro.tr.props import FalseProp, TrueProp
from repro.tr.types import (
    BOOL,
    FALSE,
    INT,
    STR,
    TRUE,
    VOID,
    Fun,
    Pair,
    Refine,
    Union,
    Vec,
)


def synth(text):
    return Checker().synth(Env(), parse_expr_text(text))


class TestLiterals:
    def test_int_has_literal_object(self):
        result = synth("42")
        assert result.type == INT
        assert result.obj == LinExpr(42, ())
        assert isinstance(result.then_prop, TrueProp)
        assert isinstance(result.else_prop, FalseProp)

    def test_true(self):
        result = synth("#t")
        assert result.type == TRUE
        assert isinstance(result.else_prop, FalseProp)

    def test_false(self):
        result = synth("#f")
        assert result.type == FALSE
        assert isinstance(result.then_prop, FalseProp)

    def test_string(self):
        assert synth('"hi"').type == STR


class TestApplications:
    def test_addition_result_object(self):
        result = synth("(+ 1 2)")
        assert result.type == INT
        assert result.obj == LinExpr(3, ())

    def test_nested_arithmetic_objects_compose(self):
        result = synth("(- (+ 5 3) 2)")
        assert result.obj == LinExpr(6, ())

    def test_constant_multiplication_is_linear(self):
        result = synth("(* 2 (+ 1 2))")
        assert result.obj == LinExpr(6, ())

    def test_comparison_type(self):
        assert synth("(< 1 2)").type == BOOL

    def test_wrong_argument_type(self):
        with pytest.raises(CheckError):
            synth("(+ 1 #t)")

    def test_wrong_arity(self):
        with pytest.raises(ArityError):
            synth("(+ 1)")

    def test_apply_non_function(self):
        with pytest.raises(CheckError):
            synth("(1 2)")

    def test_void(self):
        assert synth("(void)").type == VOID


class TestPairs:
    def test_cons(self):
        result = synth("(cons 1 #t)")
        assert result.type == Pair(INT, TRUE)

    def test_fst_snd(self):
        assert synth("(fst (cons 1 #t))").type == INT
        assert synth("(snd (cons 1 #t))").type == TRUE

    def test_fst_of_non_pair(self):
        with pytest.raises(CheckError):
            synth("(fst 1)")

    def test_nested_pairs(self):
        assert synth("(fst (snd (cons 1 (cons 2 3))))").type == INT


class TestVectors:
    def test_literal_type(self):
        result = synth("(vector 1 2 3)")
        assert isinstance(result.type, Refine)
        assert result.type.base == Vec(INT)

    def test_heterogeneous_vector(self):
        result = synth("(vector 1 #t)")
        assert isinstance(result.type.base, Vec)
        assert isinstance(result.type.base.elem, Union)

    def test_literal_length_known(self):
        # length is statically 3, so constant indices below 3 are safe
        check_program_text("(safe-vec-ref (vector 1 2 3) 2)")

    def test_literal_length_bound_enforced(self):
        with pytest.raises(CheckError):
            check_program_text("(safe-vec-ref (vector 1 2 3) 3)")

    def test_make_vec_length(self):
        check_program_text("(safe-vec-ref (make-vec 4 0) 3)")

    def test_vec_ref_unchecked_index_ok(self):
        check_program_text("(vec-ref (vector 1 2 3) 17)")


class TestLet:
    def test_body_type(self):
        assert synth("(let ([x 1]) (+ x 1))").type == INT

    def test_scope_exit_substitution(self):
        # the result object survives in terms of the outer constant
        result = synth("(let ([x 2]) (+ x 3))")
        assert result.obj == LinExpr(5, ())

    def test_unbound(self):
        with pytest.raises((UnboundVariable, Exception)):
            synth("(let ([x y]) x)")

    def test_sequencing_via_begin(self):
        assert synth("(begin 1 2 3)").type == INT


class TestIf:
    def test_join_type(self):
        # an unknown boolean keeps both branches live
        fun = synth("(λ ([b : Bool]) (if b 1 #t))").type
        joined = fun.result.type
        assert set(joined.members) == {INT, TRUE}

    def test_constant_propagation_prunes_let_bound_test(self):
        # (< 1 2) folds, the binding's occurrence prop kills the else branch
        result = synth("(let ([b (< 1 2)]) (if b 1 #t))")
        assert result.type == INT

    def test_same_branch_type(self):
        assert synth("(if (< 1 2) 1 2)").type == INT

    def test_constant_test_prunes_dead_branch(self):
        # (< 1 2) folds to a true proposition, so the else branch is dead
        assert synth("(if (< 1 2) 1 #t)").type == INT

    def test_error_branch_collapses(self):
        prog = '(define (f) (if (< 1 2) 1 (error "no"))) (f)'
        types = check_program_text(prog)
        assert types["f"].result.type == INT


class TestChecking:
    def test_annotation_checked(self):
        assert check_program_text("(: f : Int -> Int) (define (f x) x)")

    def test_annotation_violated(self):
        with pytest.raises(CheckError):
            check_program_text("(: f : Int -> Bool) (define (f x) x)")

    def test_ascription(self):
        check_program_text("(ann 5 Nat)")

    def test_ascription_violated(self):
        with pytest.raises(CheckError):
            check_program_text("(ann -5 Nat)")

    def test_unannotated_function_defines_infer_numeric_domains(self):
        # candidate inference (§4.4 machinery) guesses Int domains
        types = check_program_text("(define f (λ (x) x)) (f 1)")
        assert types["f"].arg_types() == (INT,)

    def test_inferred_domain_is_conservative(self):
        # the guessed Int domain rejects non-numeric callers
        with pytest.raises(CheckError):
            check_program_text("(define f (λ (x) x)) (f #t)")

    def test_struct_ref_unsupported(self):
        with pytest.raises(UnsupportedFeature):
            check_program_text(
                "(struct P (size)) (: f : Any -> Any) (define (f p) (P-size p))"
            )

    def test_define_value_usable_downstream(self):
        types = check_program_text(
            "(define k 5) (: f : Nat -> Int) (define (f n) n) (f k)"
        )
        assert "k" in types
