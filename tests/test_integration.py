"""End-to-end integration: parse → expand → mutation pass → check → run.

Larger multi-definition programs in the style of the corpus libraries,
checked and executed, with results cross-validated against Python.
"""

import pytest

from repro import (
    CheckError,
    check_program_text,
    run_program_text,
)

STATISTICS = """
(: vsum : (Vecof Int) -> Int)
(define (vsum v)
  (for/sum ([i (in-range (len v))])
    (safe-vec-ref v i)))

(: vmax : (Vecof Int) -> Int)
(define (vmax v)
  (for/fold ([best 0]) ([i (in-range (len v))])
    (max best (safe-vec-ref v i))))

(: mean-ish : (Vecof Int) -> Int)
(define (mean-ish v)
  (if (< 0 (len v))
      (quotient (vsum v) (len v))
      0))

(define data (vector 4 8 15 16 23 42))
(vsum data)
(vmax data)
(mean-ish data)
"""


class TestStatisticsModule:
    def test_checks(self):
        types = check_program_text(STATISTICS)
        assert set(types) >= {"vsum", "vmax", "mean-ish", "data"}

    def test_runs(self):
        _defs, results = run_program_text(STATISTICS)
        data = [4, 8, 15, 16, 23, 42]
        assert results == (sum(data), max(data), sum(data) // len(data))


MATRIX = """
(: make-row : [n : Nat] -> [v : (Vecof Int) #:where (= (len v) n)])
(define (make-row n) (make-vec n 0))

(: row-fill! : (Vecof Int) Int -> Void)
(define (row-fill! row x)
  (for ([i (in-range (len row))])
    (safe-vec-set! row i x)))

(: row-dot : [A : (Vecof Int)]
             [B : (Vecof Int) #:where (= (len B) (len A))] -> Int)
(define (row-dot A B)
  (for/sum ([i (in-range (len A))])
    (* (safe-vec-ref A i) (safe-vec-ref B i))))

(define r1 (make-row 4))
(define r2 (make-row 4))
(row-fill! r1 3)
(row-fill! r2 5)
(row-dot r1 r2)
"""


class TestMatrixModule:
    def test_checks(self):
        check_program_text(MATRIX)

    def test_runs(self):
        _defs, results = run_program_text(MATRIX)
        assert results[-1] == 4 * 3 * 5

    def test_length_fact_flows_through_make_vec(self):
        # make-vec's range records (len v) = n, so same-n rows dot safely
        check_program_text(MATRIX)


BINARY_SEARCH = """
(: bsearch : (Vecof Int) Int -> Int)
(define (bsearch v target)
  (let loop ([lo : Nat 0]
             [hi : (Refine [h : Int] (<= h (len v))) (len v)])
    (if (< lo hi)
        (let ([mid (quotient (+ lo hi) 2)])
          (if (and (<= 0 mid) (< mid (len v)))
              (let ([x (safe-vec-ref v mid)])
                (cond
                  [(= x target) mid]
                  [(< x target) (loop (+ mid 1) hi)]
                  [else (loop lo mid)]))
              -1))
        -1)))

(bsearch (vector 1 3 5 7 9 11) 7)
(bsearch (vector 1 3 5 7 9 11) 8)
"""


class TestBinarySearch:
    def test_checks(self):
        check_program_text(BINARY_SEARCH)

    def test_runs(self):
        _defs, results = run_program_text(BINARY_SEARCH)
        assert results == (3, -1)


HISTOGRAM = """
(: histogram : (Vecof Int) Pos -> (Vecof Int))
(define (histogram samples buckets)
  (let ([counts (make-vec buckets 0)])
    (for ([i (in-range (len samples))])
      (let ([b (modulo (safe-vec-ref samples i) buckets)])
        (if (and (<= 0 b) (< b (len counts)))
            (safe-vec-set! counts b (+ 1 (safe-vec-ref counts b)))
            (void))))
    counts))

(histogram (vector 1 2 3 4 5 6 7) 3)
"""


class TestHistogram:
    def test_checks(self):
        check_program_text(HISTOGRAM)

    def test_runs(self):
        _defs, results = run_program_text(HISTOGRAM)
        # values mod 3 of 1..7: 1,2,0,1,2,0,1 → counts [2, 3, 2]
        assert results == ([2, 3, 2],)


STATE_MACHINE = """
(define state 0)

(: step! : Int -> Void)
(define (step! input)
  (set! state (modulo (+ state input) 16)))

(: read-state : -> Int)
(define (read-state) state)

(step! 9)
(step! 9)
(read-state)
"""


class TestStateMachine:
    def test_checks(self):
        check_program_text(STATE_MACHINE)

    def test_runs(self):
        _defs, results = run_program_text(STATE_MACHINE)
        assert results[-1] == 2

    def test_state_gives_no_occurrence_info(self):
        with pytest.raises(CheckError):
            check_program_text(
                STATE_MACHINE
                + """
                (: peek : (Vecof Int) -> Int)
                (define (peek v)
                  (if (and (<= 0 state) (< state (len v)))
                      (safe-vec-ref v state)
                      0))
                """
            )


class TestErrorQuality:
    def test_error_mentions_argument_position(self):
        try:
            check_program_text(
                """
                (: f : (Vecof Int) Int -> Int)
                (define (f v i) (safe-vec-ref v i))
                """
            )
        except CheckError as exc:
            message = str(exc)
            assert "argument 2" in message
            assert "expected" in message
        else:
            raise AssertionError("should have failed")

    def test_error_shows_expected_refinement(self):
        try:
            check_program_text("(ann -3 Nat)")
        except CheckError as exc:
            assert "Int" in str(exc)
        else:
            raise AssertionError("should have failed")
