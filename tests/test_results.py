"""Tests for type-results and existential binders."""

from repro.tr.objects import NULL, Var, obj_int
from repro.tr.props import FF, TT, lin_le
from repro.tr.results import (
    TypeResult,
    false_result,
    fresh_name,
    result_of_type,
    true_result,
)
from repro.tr.types import INT, Refine


class TestConstructors:
    def test_result_of_type_trivial_props(self):
        result = result_of_type(INT)
        assert result.type == INT
        assert result.then_prop == TT
        assert result.else_prop == TT
        assert result.obj.is_null()
        assert result.binders == ()

    def test_true_result(self):
        result = true_result(INT, Var("x"))
        assert result.else_prop == FF
        assert result.obj == Var("x")

    def test_false_result(self):
        result = false_result(INT)
        assert result.then_prop == FF

    def test_fresh_names_unique(self):
        names = {fresh_name("x") for _ in range(100)}
        assert len(names) == 100

    def test_fresh_names_carry_hint(self):
        assert fresh_name("loop").startswith("loop%")


class TestBinders:
    def test_with_binders_prepends(self):
        inner = true_result(INT, Var("z"), ).with_binders((("z", INT),))
        outer = inner.with_binders((("w", INT),))
        assert outer.binders == (("w", INT), ("z", INT))

    def test_with_empty_binders_is_identity(self):
        result = true_result(INT)
        assert result.with_binders(()) is result

    def test_erase_object(self):
        result = true_result(INT, Var("x")).erase_object()
        assert result.obj.is_null()
        assert result.type == INT

    def test_repr_shows_existentials(self):
        result = TypeResult(INT, TT, TT, Var("z"), (("z", INT),))
        assert "∃z" in repr(result)

    def test_results_hashable_and_comparable(self):
        a = true_result(INT, obj_int(5))
        b = true_result(INT, obj_int(5))
        assert a == b
        assert hash(a) == hash(b)
