"""Tests for the type/prop/object pretty-printer, including round trips."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.tr.objects import LEN, Var, lin_add, lin_scale, obj_field, obj_int
from repro.tr.parse import BYTE, NAT, parse_obj, parse_prop, parse_type_text
from repro.tr.pretty import pretty_obj, pretty_prop, pretty_type
from repro.tr.props import lin_eq, lin_le, lin_lt, make_and, make_congruence, make_or
from repro.tr.results import true_result
from repro.tr.types import (
    BOOL,
    BOT,
    INT,
    STR,
    TOP,
    TRUE,
    VOID,
    Fun,
    Pair,
    Poly,
    Refine,
    TVar,
    Vec,
    make_union,
)
from repro.sexp.reader import read
from repro.tr.results import TypeResult


def _plain(ty):
    """The bare result shape the annotation parser produces."""
    return TypeResult(ty)


class TestObjects:
    def test_var(self):
        assert pretty_obj(Var("x")) == "x"

    def test_literal(self):
        assert pretty_obj(obj_int(42)) == "42"

    def test_len_field(self):
        assert pretty_obj(obj_field(LEN, Var("v"))) == "(len v)"

    def test_linear_combination(self):
        expr = lin_add(lin_scale(2, Var("x")), obj_int(3))
        assert pretty_obj(expr) == "(+ 3 (* 2 x))"

    def test_roundtrip_linear(self):
        expr = lin_add(lin_scale(2, Var("x")), lin_add(Var("y"), obj_int(-1)))
        assert parse_obj(read(pretty_obj(expr))) == expr


class TestProps:
    def test_le(self):
        prop = lin_le(Var("x"), obj_int(5))
        assert pretty_prop(prop) == "(<= x 5)"

    def test_lt_recovers_strictness(self):
        prop = lin_lt(Var("i"), obj_field(LEN, Var("v")))
        assert pretty_prop(prop) == "(< i (len v))"

    def test_and(self):
        prop = make_and((lin_le(obj_int(0), Var("i")), lin_lt(Var("i"), Var("n"))))
        assert pretty_prop(prop) == "(and (<= 0 i) (< i n))"

    def test_congruence_spellings(self):
        assert pretty_prop(make_congruence(Var("x"), 2, 0)) == "(even x)"
        assert pretty_prop(make_congruence(Var("x"), 2, 1)) == "(odd x)"
        assert pretty_prop(make_congruence(Var("x"), 3, 0)) == "(divisible x 3)"
        assert pretty_prop(make_congruence(Var("x"), 5, 2)) == "(congruent x 5 2)"

    @pytest.mark.parametrize(
        "prop",
        [
            lin_le(Var("x"), obj_int(5)),
            lin_lt(obj_int(0), Var("x")),
            lin_eq(Var("x"), Var("y")),
            make_and((lin_le(obj_int(0), Var("i")), lin_lt(Var("i"), Var("n")))),
            make_or((lin_le(Var("x"), obj_int(0)), lin_le(obj_int(10), Var("x")))),
            make_congruence(Var("x"), 2, 0),
            make_congruence(Var("x"), 7, 3),
        ],
    )
    def test_roundtrip(self, prop):
        assert parse_prop(read(pretty_prop(prop))) == prop


class TestTypes:
    @pytest.mark.parametrize(
        "ty,text",
        [
            (INT, "Int"),
            (BOOL, "Bool"),
            (TOP, "Any"),
            (BOT, "Bot"),
            (Vec(INT), "(Vecof Int)"),
            (Pair(INT, BOOL), "(Pairof Int Bool)"),
        ],
    )
    def test_spellings(self, ty, text):
        assert pretty_type(ty) == text

    def test_nat_renders_as_refinement(self):
        assert pretty_type(NAT) == "(Refine [n : Int] (<= 0 n))"

    def test_function(self):
        fun = Fun((("x", INT),), true_result(INT))
        assert pretty_type(fun) == "([x : Int] -> Int)"

    def test_poly(self):
        poly = Poly(("A",), Fun((("v", Vec(TVar("A"))),), true_result(TVar("A"))))
        assert pretty_type(poly) == "(All (A) ([v : (Vecof A)] -> A))"

    @pytest.mark.parametrize(
        "ty",
        [
            INT,
            BOOL,
            NAT,
            BYTE,
            Vec(NAT),
            Pair(Vec(INT), STR),
            make_union([INT, STR, VOID]),
            Refine("i", INT, lin_lt(Var("i"), obj_field(LEN, Var("v")))),
            # function ranges print only their type, so use the plain
            # result shape the parser produces
            Fun((("x", INT), ("y", NAT)), _plain(INT)),
            Poly(("A",), Fun((("v", Vec(TVar("A"))),), _plain(TVar("A")))),
        ],
    )
    def test_roundtrip(self, ty):
        tvars = frozenset({"A"})
        from repro.sexp.reader import read as read_sexp
        from repro.tr.parse import parse_type

        reparsed = parse_type(read_sexp(pretty_type(ty)), tvars)
        assert reparsed == ty


_names = st.sampled_from(["x", "y", "z"])
_objs = st.recursive(
    st.one_of(
        st.builds(Var, _names),
        st.builds(obj_int, st.integers(-20, 20)),
        st.builds(lambda n: obj_field(LEN, Var(n)), _names),
    ),
    lambda inner: st.builds(
        lambda a, b, k: lin_add(lin_scale(k, a), b),
        inner,
        inner,
        st.integers(1, 4),
    ),
    max_leaves=4,
)


@settings(max_examples=150, deadline=None)
@given(_objs)
def test_object_pretty_roundtrip(obj):
    assert parse_obj(read(pretty_obj(obj))) == obj


@settings(max_examples=150, deadline=None)
@given(_objs, _objs)
def test_inequality_pretty_roundtrip(a, b):
    prop = lin_le(a, b)
    assert parse_prop(read(pretty_prop(prop))) == prop
