"""Loop/macro inference scenarios (section 4.4)."""

import pytest

from repro.checker.check import Checker, check_program_text
from repro.checker.errors import CheckError
from repro.syntax.parser import parse_program


def checks(src, **kwargs):
    check_program_text(src, **kwargs)
    return True


def fails(src, **kwargs):
    with pytest.raises(CheckError):
        check_program_text(src, **kwargs)
    return True


FORWARD_SAFE = """
(: vsum : (Vecof Int) -> Int)
(define (vsum A)
  (for/sum ([i (in-range (len A))])
    (safe-vec-ref A i)))
"""

REVERSE_SAFE = """
(: rsum : (Vecof Int) -> Int)
(define (rsum A)
  (for/sum ([i (in-range (- (len A) 1) -1 -1)])
    (safe-vec-ref A i)))
"""


class TestNatHeuristic:
    def test_forward_loop_with_safe_access(self):
        assert checks(FORWARD_SAFE)

    def test_reverse_loop_with_safe_access_fails(self):
        # §4.4: "the heuristic quickly fails in the reverse iteration case"
        assert fails(REVERSE_SAFE)

    def test_reverse_loop_with_plain_access_checks(self):
        assert checks(REVERSE_SAFE.replace("safe-vec-ref", "vec-ref"))

    def test_heuristic_disabled_fails_forward_case(self):
        # without trying Nat, pos : Int cannot establish 0 ≤ pos
        assert fails(FORWARD_SAFE, nat_heuristic=False)

    def test_plain_loop_checks_without_heuristic(self):
        assert checks(
            FORWARD_SAFE.replace("safe-vec-ref", "vec-ref"), nat_heuristic=False
        )


class TestForForms:
    def test_for_sum_with_bounds(self):
        assert checks(
            """
            (: f : Int -> Int)
            (define (f n) (for/sum ([i (in-range n)]) i))
            """
        )

    def test_for_product(self):
        assert checks(
            """
            (: f : (Vecof Int) -> Int)
            (define (f v)
              (for/product ([i (in-range (len v))])
                (safe-vec-ref v i)))
            """
        )

    def test_plain_for_effects(self):
        assert checks(
            """
            (: zero-all! : (Vecof Int) -> Void)
            (define (zero-all! v)
              (for ([i (in-range (len v))])
                (safe-vec-set! v i 0)))
            """
        )

    def test_for_fold(self):
        assert checks(
            """
            (: maxlen : (Vecof (Vecof Int)) -> Int)
            (define (maxlen dss)
              (for/fold ([acc 0]) ([i (in-range (len dss))])
                (max acc (len (safe-vec-ref dss i)))))
            """
        )

    def test_two_vector_loop_needs_length_fact(self):
        assert fails(
            """
            (: f : (Vecof Int) (Vecof Int) -> Int)
            (define (f A B)
              (for/sum ([i (in-range (len A))])
                (safe-vec-ref B i)))
            """
        )

    def test_two_vector_loop_with_unless_guard(self):
        assert checks(
            """
            (: f : (Vecof Int) (Vecof Int) -> Int)
            (define (f A B)
              (unless (= (len A) (len B)) (error "bad"))
              (for/sum ([i (in-range (len A))])
                (safe-vec-ref B i)))
            """
        )


class TestNamedLet:
    def test_annotated_named_let(self):
        assert checks(
            """
            (: count-down : Nat -> Nat)
            (define (count-down n)
              (let loop ([i : Nat n])
                (if (zero? i) 0 (loop (- i 1)))))
            """
        )

    def test_weak_nat_annotation_fails_safe_access(self):
        assert fails(
            """
            (: prod : (Vecof Int) -> Int)
            (define (prod ds)
              (let loop ([i : Nat (len ds)] [res : Int 1])
                (cond
                  [(zero? i) res]
                  [else (loop (- i 1) (* res (safe-vec-ref ds (- i 1))))])))
            """
        )

    def test_refined_annotation_verifies(self):
        # §5.1 "Annotations added"
        assert checks(
            """
            (: prod : (Vecof Int) -> Int)
            (define (prod ds)
              (let loop ([i : (Refine [i : Nat] (<= i (len ds))) (len ds)]
                         [res : Int 1])
                (cond
                  [(zero? i) res]
                  [else (loop (- i 1) (* res (safe-vec-ref ds (- i 1))))])))
            """
        )

    def test_unannotated_named_let_inferred(self):
        assert checks(
            """
            (: f : (Vecof Int) -> Int)
            (define (f v)
              (let loop ([i 0])
                (if (< i (len v))
                    (+ (safe-vec-ref v i) (loop (+ i 1)))
                    0)))
            """
        )


class TestLetrec:
    def test_annotated_letrec(self):
        assert checks(
            """
            (: f : Nat -> Nat)
            (define (f n)
              (letrec ([go : (Nat -> Nat) (λ ([k : Nat]) (if (zero? k) 0 (go (- k 1))))])
                (go n)))
            """
        )

    def test_inference_reports_best_error(self):
        try:
            check_program_text(REVERSE_SAFE)
        except CheckError as exc:
            assert "loop" in str(exc)
        else:
            raise AssertionError("expected failure")
