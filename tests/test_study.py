"""Tests for the case-study harness (section 5, Figure 9) at small scale."""

import random

import pytest

from repro.corpus.generator import build_all_libraries
from repro.corpus.patterns import instantiate
from repro.study.casestudy import analyze_instance, analyze_library, run_case_study
from repro.study.report import (
    corpus_table,
    figure9_table,
    headline,
    math_categories_table,
)


@pytest.fixture(scope="module")
def mini_study():
    return run_case_study(scale=0.04)


class TestPerPatternTiers:
    """The checker classifies each idiom exactly as the paper reports."""

    def _tier(self, pattern):
        inst = instantiate(pattern, random.Random(11), "_s_1")
        observed = analyze_instance(inst)
        assert len(set(observed)) == 1, observed
        return observed[0]

    @pytest.mark.parametrize(
        "pattern",
        ["vec_match", "loop_sum", "guard", "dyn_check", "last_elem", "mod_index"],
    )
    def test_auto_patterns(self, pattern):
        assert self._tier(pattern) == "auto"

    @pytest.mark.parametrize("pattern", ["nat_loop", "index_param", "offset_param"])
    def test_annotation_patterns(self, pattern):
        assert self._tier(pattern) == "annotation"

    @pytest.mark.parametrize("pattern", ["swap", "reverse_loop", "const_index"])
    def test_modification_patterns(self, pattern):
        assert self._tier(pattern) == "modification"

    @pytest.mark.parametrize("pattern", ["nonlinear", "dims_of"])
    def test_beyond_scope_patterns(self, pattern):
        assert self._tier(pattern) == "beyond-scope"

    def test_unimplemented_pattern(self):
        assert self._tier("struct_field") == "unimplemented"

    def test_unsafe_pattern(self):
        assert self._tier("mutable_cache") == "unsafe"


class TestMiniStudy:
    def test_no_mismatches(self, mini_study):
        for name, lib in mini_study.libraries.items():
            assert lib.mismatches == [], f"{name}: {lib.mismatches}"

    def test_all_libraries_present(self, mini_study):
        assert set(mini_study.libraries) == {"math", "plot", "pict3d"}

    def test_figure9_shape(self, mini_study):
        """Who wins and by roughly what factor (the paper's shape)."""
        libs = mini_study.libraries
        # plot has by far the highest automatic rate
        assert libs["plot"].percentage("auto") > libs["math"].percentage("auto")
        assert libs["plot"].percentage("auto") > libs["pict3d"].percentage("auto")
        # pict3d's annotations dominate its automatic tier
        assert libs["pict3d"].percentage("annotation") > libs["pict3d"].percentage(
            "auto"
        )
        # only math has a code-modification tier
        assert libs["math"].percentage("modification") > 0
        assert libs["plot"].percentage("modification") == 0

    def test_math_total_verifiable_majority(self, mini_study):
        math = mini_study.libraries["math"]
        verified = sum(
            math.percentage(t) for t in ("auto", "annotation", "modification")
        )
        assert 60 <= verified <= 85  # paper: 72%

    def test_headline_about_half_auto(self, mini_study):
        assert 40 <= mini_study.auto_percentage() <= 65  # paper: ≈50%

    def test_unsafe_ops_detected(self, mini_study):
        math = mini_study.libraries["math"]
        assert math.tier_counts.get("unsafe", 0) >= 1


class TestReports:
    def test_figure9_table_renders(self, mini_study):
        table = figure9_table(mini_study)
        assert "plot" in table and "math" in table and "pict3d" in table
        assert "paper" in table

    def test_corpus_table_renders(self, mini_study):
        table = corpus_table(mini_study)
        assert "total" in table

    def test_math_categories_table(self, mini_study):
        table = math_categories_table(mini_study)
        assert "Beyond our scope" in table
        assert "Unsafe code" in table

    def test_headline_renders(self, mini_study):
        assert "ops" in headline(mini_study)


class TestAblations:
    def test_heuristic_off_moves_loops_out_of_auto(self):
        from repro.checker.check import Checker

        inst = instantiate("loop_sum", random.Random(5), "_s_2")
        with_heuristic = analyze_instance(inst)
        without = analyze_instance(
            inst, checker_factory=lambda: Checker(nat_heuristic=False)
        )
        assert with_heuristic == ["auto"]
        assert without != ["auto"]
