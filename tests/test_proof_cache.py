"""The incremental engine's memoisation must be invisible.

The proof cache is keyed by the environment's structural fingerprint,
so its one safety obligation is: *learning a new fact must never let a
query answer from before the fact leak through* — neither a stale
negative (the fact proves the goal now) nor a stale positive (the fact
contradicts the goal's support... which cannot happen in this monotone
logic, but the fingerprint discipline must hold regardless).  These
tests drive exactly those scenarios, plus the fingerprint/fuel
mechanics the guarantees rest on.
"""

import pytest

from repro.logic.env import Env
from repro.logic.prove import EngineStats, Logic
from repro.tr.objects import Var, obj_int
from repro.tr.props import FF, IsType, NotType, lin_le, lin_lt, make_alias, make_or
from repro.tr.types import BOOL, FALSE, INT, STR, TRUE, Refine, Union

x = Var("x")
y = Var("y")


@pytest.fixture()
def logic():
    return Logic()


class TestFingerprint:
    def test_equal_content_equal_fingerprint(self, logic):
        a = logic.extend(Env(), IsType(x, INT))
        b = logic.extend(Env(), IsType(x, INT))
        assert a.fingerprint() == b.fingerprint()
        assert hash(a.fingerprint()) == hash(b.fingerprint())

    def test_extension_changes_fingerprint(self, logic):
        env = logic.extend(Env(), IsType(x, INT))
        extended = logic.extend(env, lin_le(x, obj_int(5)))
        assert env.fingerprint() != extended.fingerprint()

    def test_no_op_extension_keeps_fingerprint(self, logic):
        env = logic.extend(Env(), IsType(x, INT))
        again = logic.extend(env, IsType(x, INT))
        assert env.fingerprint() == again.fingerprint()

    def test_snapshot_shares_fingerprint(self, logic):
        env = logic.extend(Env(), IsType(x, INT))
        env.fingerprint()
        assert env.snapshot().fingerprint() == env.fingerprint()

    def test_alias_changes_fingerprint(self, logic):
        env = logic.extend(Env(), IsType(x, INT))
        env = logic.extend(env, IsType(y, INT))
        aliased = logic.extend(env, make_alias(x, y))
        assert env.fingerprint() != aliased.fingerprint()

    def test_order_of_facts_is_immaterial(self, logic):
        a = logic.extend(logic.extend(Env(), IsType(x, INT)), IsType(y, STR))
        b = logic.extend(logic.extend(Env(), IsType(y, STR)), IsType(x, INT))
        assert a.fingerprint() == b.fingerprint()


class TestInvalidation:
    """Extending Γ must never return a stale answer."""

    def test_new_fact_flips_negative_to_positive(self, logic):
        env = logic.extend(Env(), IsType(x, INT))
        goal = lin_le(x, obj_int(10))
        assert not logic.proves(env, goal)  # caches the negative
        learned = logic.extend(env, lin_le(x, obj_int(5)))
        assert logic.proves(learned, goal)  # x ≤ 5 ⊢ x ≤ 10

    def test_new_fact_makes_env_absurd(self, logic):
        env = logic.extend(Env(), lin_le(obj_int(0), x))
        assert not logic.proves(env, FF)
        absurd = logic.extend(env, lin_lt(x, obj_int(0)))
        assert logic.proves(absurd, FF)

    def test_narrowing_flips_type_query(self, logic):
        env = logic.extend(Env(), IsType(x, Union((INT, STR))))
        goal = IsType(x, INT)
        assert not logic.proves(env, goal)
        narrowed = logic.extend(env, NotType(x, STR))
        assert logic.proves(narrowed, goal)

    def test_sibling_branches_do_not_contaminate(self, logic):
        """Two extensions of one base must be cached independently."""
        base = logic.extend(Env(), IsType(x, BOOL))
        then_env = logic.extend(base, NotType(x, FALSE))
        else_env = logic.extend(base, IsType(x, FALSE))
        assert logic.proves(then_env, IsType(x, TRUE))
        assert not logic.proves(else_env, IsType(x, TRUE))
        assert logic.proves(else_env, IsType(x, FALSE))
        assert not logic.proves(then_env, IsType(x, FALSE))

    def test_repeat_query_hits_and_agrees(self, logic):
        env = logic.extend(Env(), lin_le(x, obj_int(5)))
        goal = lin_le(x, obj_int(10))
        first = logic.proves(env, goal)
        hits_before = logic.stats.prove_hits
        second = logic.proves(env, goal)
        assert first is second is True
        assert logic.stats.prove_hits == hits_before + 1

    def test_identical_content_shares_cache_across_envs(self, logic):
        goal = lin_le(x, obj_int(10))
        a = logic.extend(Env(), lin_le(x, obj_int(5)))
        assert logic.proves(a, goal)
        hits_before = logic.stats.prove_hits
        b = logic.extend(Env(), lin_le(x, obj_int(5)))  # rebuilt from scratch
        assert logic.proves(b, goal)
        assert logic.stats.prove_hits == hits_before + 1


class TestSubtypeMemo:
    def test_subtype_cached_and_invalidated_by_env(self, logic):
        env = Env()
        nat = Refine("n", INT, lin_le(obj_int(0), Var("n")))
        assert logic.subtype(env, nat, INT)
        assert not logic.subtype(env, INT, nat)
        # A fact about an unrelated variable changes the fingerprint but
        # must not change (or corrupt) the verdicts.
        other = logic.extend(env, IsType(y, STR))
        assert logic.subtype(other, nat, INT)
        assert not logic.subtype(other, INT, nat)

    def test_refinement_subtype_uses_env_facts(self, logic):
        small = Refine("n", INT, lin_le(Var("n"), obj_int(5)))
        big = Refine("n", INT, lin_le(Var("n"), obj_int(10)))
        env = Env()
        assert logic.subtype(env, small, big)
        assert not logic.subtype(env, big, small)


class TestCacheBounds:
    def test_cache_clears_instead_of_growing_without_bound(self):
        logic = Logic(cache_limit=8)
        env = Env()
        for i in range(40):
            logic.proves(env, lin_le(x, obj_int(i)))
        assert len(logic._prove_cache) <= 8

    def test_reset_caches(self, logic):
        env = logic.extend(Env(), lin_le(x, obj_int(5)))
        logic.proves(env, lin_le(x, obj_int(10)))
        logic.reset_caches()
        assert not logic._prove_cache
        assert not logic._sessions


class TestStats:
    def test_stats_shape(self, logic):
        env = logic.extend(Env(), lin_le(x, obj_int(5)))
        logic.proves(env, lin_le(x, obj_int(10)))
        as_dict = logic.stats.as_dict()
        assert as_dict["prove_calls"] >= 1
        assert as_dict["theory_queries"].get("linear-arithmetic", 0) >= 1
        assert isinstance(logic.stats.prove_hit_rate, float)

    def test_reset(self):
        stats = EngineStats()
        stats.prove_calls = 7
        stats.theory_queries["linear-arithmetic"] = 3
        stats.reset()
        assert stats.prove_calls == 0
        assert stats.theory_queries == {}


class TestFreshNameFloor:
    """Deterministic fresh names must stay *fresh* (no capture).

    Restarting the counter per check is only sound because the parser
    records a floor above every %-name embedded in the program —
    generated (macro gensyms, unnamed type args) or user-written.
    """

    def test_parse_is_deterministic(self):
        from repro.syntax.parser import parse_program

        src = """
        (: f : [v : (Vecof Int)] -> Int)
        (define (f v) (for/sum ([i (in-range 10)]) i))
        """
        assert parse_program(src) == parse_program(src)

    def test_floor_exceeds_generated_names(self):
        from repro.syntax.parser import parse_program
        from repro.tr.results import fresh_name, reset_fresh_names

        # the bare Int argument gets a generated `arg%N` binder
        program = parse_program("(: g : (Int -> Int))\n(define (g y) y)")
        assert program.fresh_floor > 0
        reset_fresh_names(program.fresh_floor)
        witness = fresh_name("arg")
        fun_ty = program.defines[0].annotation
        assert witness not in {name for name, _ in fun_ty.args}

    def test_floor_covers_user_written_freshlike_names(self):
        from repro.syntax.parser import parse_program

        program = parse_program("(define arg%41 7)\narg%41")
        assert program.fresh_floor >= 42

    def test_checking_twice_yields_identical_results(self):
        from repro.checker.check import Checker
        from repro.syntax.parser import parse_program

        src = """
        (: sum-to : [n : Nat] -> Int)
        (define (sum-to n) (for/sum ([i (in-range n)]) i))
        """
        first = Checker(logic=Logic()).check_program(parse_program(src))
        second = Checker(logic=Logic()).check_program(parse_program(src))
        assert first == second


class TestDisjunctionSplitting:
    def test_split_still_sound_with_caches(self, logic):
        """Case splits snapshot + drop compounds; fingerprints must track."""
        env = logic.extend(Env(), IsType(x, Union((INT, STR))))
        env = logic.extend(
            env, make_or((IsType(x, INT), IsType(x, STR)))
        )
        # Provable only by splitting on the stored disjunction.
        goal = make_or((IsType(x, INT), IsType(x, STR)))
        assert logic.proves(env, goal)
