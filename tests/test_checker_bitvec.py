"""Bitvector-theory scenarios (section 2.2): the AES xtime case."""

import pytest

from repro.checker.check import check_program_text
from repro.checker.errors import CheckError

XTIME = """
(: xtime : Byte -> Byte)
(define (xtime num)
  (let ([n (AND (* 2 num) 255)])
    (cond
      [(= 0 (AND num 128)) n]
      [else (XOR n 27)])))
"""


def checks(src):
    check_program_text(src)
    return True


def fails(src):
    with pytest.raises(CheckError):
        check_program_text(src)
    return True


class TestXtime:
    def test_xtime_checks(self):
        assert checks(XTIME)

    def test_doubling_without_mask_rejected(self):
        assert fails(
            """
            (: bad : Byte -> Byte)
            (define (bad num) (* 2 num))
            """
        )

    def test_xor_without_mask_rejected(self):
        # without the 0xff mask, (2·num) ⊕ 0x1b can exceed a byte
        assert fails(
            """
            (: bad : Byte -> Byte)
            (define (bad num) (XOR (* 2 num) 27))
            """
        )


class TestBitwiseBounds:
    def test_and_mask_gives_byte(self):
        assert checks(
            """
            (: low-byte : Nat -> Byte)
            (define (low-byte x) (AND x 255))
            """
        )

    def test_and_tighter_mask(self):
        assert checks(
            """
            (: nibble : Nat -> [r : Int #:where (and (<= 0 r) (<= r 15))])
            (define (nibble x) (AND x 15))
            """
        )

    def test_or_exceeds_mask(self):
        assert fails(
            """
            (: bad : Byte -> [r : Int #:where (<= r 15)])
            (define (bad x) (OR x 16))
            """
        )

    def test_xor_bytes_is_byte(self):
        assert checks(
            """
            (: mix : Byte Byte -> Byte)
            (define (mix a b) (XOR a b))
            """
        )

    def test_not_byte_is_byte(self):
        assert checks(
            """
            (: flip : Byte -> Byte)
            (define (flip b) (NOT b))
            """
        )

    def test_shift_right_shrinks(self):
        assert checks(
            """
            (: half : Byte -> Byte)
            (define (half b) (SHR b 1))
            """
        )

    def test_high_bit_test_informs_branch(self):
        # the xtime branch structure: high bit clear ⟹ num ≤ 127
        assert checks(
            """
            (: small? : Byte -> [r : Int #:where (<= r 127)])
            (define (small? num)
              (if (= 0 (AND num 128)) num 0))
            """
        )

    def test_and_linear_bound_via_fm_only(self):
        # r ≤ a holds for AND without invoking the SAT backend
        assert checks(
            """
            (: cap : Nat Nat -> Nat)
            (define (cap a b) (AND a b))
            """
        )
