"""Interning invariants of the ``tr`` value layer.

Interned nodes must be *canonical* (structurally equal values are the
same instance, so ids are injective on values — the property cache
keys rely on), survive pickling across process boundaries, keep the
content-digest scheme byte-identical to the frozen-dataclass
representation they replaced, and stay compact (``__slots__``, no
instance dict).
"""

import concurrent.futures
import multiprocessing
import pickle

import pytest

from repro.tr.intern import intern_stats, node_digest, node_id
from repro.tr.objects import (
    NULL,
    BVExpr,
    FieldRef,
    LinExpr,
    PairObj,
    Var,
    lin_add,
    obj_int,
)
from repro.tr.parse import parse_prop, parse_type
from repro.tr.props import (
    FF,
    TT,
    Alias,
    And,
    BVProp,
    Congruence,
    IsType,
    LeqZero,
    NotType,
    Or,
    lin_le,
    make_and,
)
from repro.tr.results import TypeResult
from repro.tr.types import (
    BOOL,
    FALSE,
    INT,
    STR,
    TRUE,
    Fun,
    Pair,
    Poly,
    Refine,
    TVar,
    Union,
    Vec,
)
from repro.sexp.reader import read


class TestNodeIds:
    def test_equal_values_are_identical(self):
        a = IsType(Var("q"), Pair(INT, STR))
        b = IsType(Var("q"), Pair(INT, STR))
        assert a is b
        assert node_id(a) == node_id(b)

    def test_distinct_values_get_distinct_ids(self):
        ids = {
            node_id(IsType(Var(f"v{i}"), INT)) for i in range(100)
        }
        assert len(ids) == 100

    def test_id_is_stamped_once(self):
        node = lin_le(Var("w"), obj_int(3))
        first = node_id(node)
        assert node_id(node) == first

    def test_stats_count_sharing(self):
        before = intern_stats()["shared"]
        node_id(IsType(Var("stat-probe"), INT))
        node_id(IsType(Var("stat-probe"), INT))
        assert intern_stats()["shared"] > before


class TestCachedHash:
    def test_hash_agrees_with_equality(self):
        deep_a = make_and(
            [lin_le(Var("a"), obj_int(i)) for i in range(10)]
        )
        deep_b = make_and(
            [lin_le(Var("a"), obj_int(i)) for i in range(10)]
        )
        assert deep_a == deep_b
        assert deep_a is deep_b
        assert hash(deep_a) == hash(deep_b)

    def test_repr_cached_and_stable(self):
        expr = lin_add(Var("a"), obj_int(2))
        assert repr(expr) == repr(expr)
        twin = lin_add(Var("a"), obj_int(2))
        assert repr(twin) == repr(expr)

    def test_unequal_values_unequal(self):
        assert IsType(Var("a"), INT) != IsType(Var("b"), INT)
        assert Union((INT, STR)) != Union((STR, INT))


class TestReparseIdentity:
    """Re-reading the same concrete syntax yields the *same instances*."""

    TYPE_SRC = "([x : Int] [y : (Pairof Int (U True False))] -> [z : Int #:where (<= z x)])"
    PROP_SRC = "(and (<= x 3) (: y Int))"

    def test_type_identity_after_reparse(self):
        a = parse_type(read(self.TYPE_SRC))
        b = parse_type(read(self.TYPE_SRC))
        assert a is b

    def test_prop_identity_after_reparse(self):
        a = parse_prop(read(self.PROP_SRC))
        b = parse_prop(read(self.PROP_SRC))
        assert a is b


def _roundtrip_digest(blob):
    """Executed in a fork worker: unpickle, re-digest, re-pickle id."""
    node = pickle.loads(blob)
    twin = IsType(Var("pkl"), Pair(INT, BOOL))
    return node_digest(node), node is twin


class TestPickle:
    def test_roundtrip_reinterns_locally(self):
        node = Refine("v", INT, lin_le(Var("v"), obj_int(9)))
        clone = pickle.loads(pickle.dumps(node))
        assert clone is node

    def test_roundtrip_across_fork_worker(self):
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("fork start method unavailable")
        node = IsType(Var("pkl"), Pair(INT, BOOL))
        ctx = multiprocessing.get_context("fork")
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=1, mp_context=ctx
        ) as pool:
            digest, identical = pool.submit(
                _roundtrip_digest, pickle.dumps(node)
            ).result()
        assert digest == node_digest(node)
        assert identical  # unpickling re-interned to the worker's canonical node


#: sha256 content digests captured under the frozen-dataclass
#: representation (pre-rewrite); the interned representation must
#: reproduce them byte-for-byte or every persistent cache breaks.
PINNED_DIGESTS = {
    "var": "fa6650aa4dbab6b22312424ff45a244f3a71530b177d5bf80d0aadc4bb5cdffb",
    "int7": "a984b8d10a1fa3383594e5d6ec29bda1b7af2b43e066ddec3d983b48f95943bc",
    "pairobj": "9018279ae73930ead54e853c897e04dc5e3fa0318cd9050b5e769b1e024630cb",
    "linexpr": "9101f89a725c4cfb9220dfe82a92b7d1682b6332e8109aceef0c66b334485f17",
    "fieldref": "778a10ab73d241465bfaa46e2d34a33d8b67970528bf61bfc5d6a8afaa18d533",
    "bvexpr": "4b978724cbb8f6bead7691e3cb2d93dab37040f76ed7537374fc4abd497a5736",
    "null": "1e0b4685337313ee1c85155eca0ea1095921c2059be76f5a150a394baf0f7056",
    "istype": "bbb4c9be1d5d941c1d6f8f497eeadcc52ca986f22efdd9591249441c4ed7f432",
    "leq": "7d326aac713a351d77bc10db34d941145d7233235ae32add1509ee72f4e15ec5",
    "and": "bc66badd147b954365aaa500946c4acc39af65cdd32bac8ab646745534715121",
    "or": "f360904ab93ae74ad2adbc9867aea9ad5fdaf44b805e46eb22f74cb04a282540",
    "alias": "ceebc12ce4d6081f9fd6b1d8515e3d2737c903be168134686d36e36da6adbae9",
    "congruence": "8a93d1ac901cb84c747fefa2fffd92a062cfce2cc0e7428038bad932e9cf3fac",
    "bvprop": "b4bd173420bf27967cb9abfdbc60d771059e7ad180c8556332dd57c682112df0",
    "int_t": "0b5f608070c6ce3bc711621b8371e71901bdf196dbdf04807b513f75346b7018",
    "bool_t": "e9b65bba80d93293c174b263b4256ac96176225bb5468eb6ce3f3706f623a641",
    "pair_t": "6547d64292c10c430439340f15b7272bcc82f400defb530f030b731d2a823b31",
    "vec_t": "5dac5ee88c7eab3dc39f69bdf7bd9370eaad5d5a89d60db2bf521aefc03a9ca2",
    "refine": "f67df0d85120a73ee79664325e21392d48568a03f61db6fa5029bb0853bbbaa8",
    "fun": "a0f796964c2584777f8044b88c654b4dc2a4c1628f47ec1118b9639cf62269eb",
    "poly": "2cc7c1911bdd5434d7599233aa2ad1ec8748fa2173a0e1b50de08fef0389d0ec",
    "result": "59ef9e3ffa71f77dc037ad2399abc215d046bae357961ffb996f511ee8438534",
}


def _pinned_values():
    x, y = Var("x"), Var("y")
    lin = LinExpr(3, ((x, 2), (y, -1)))
    bv = BVExpr("xor", (x, 255), 8)
    return {
        "var": x,
        "int7": obj_int(7),
        "pairobj": PairObj(x, y),
        "linexpr": lin,
        "fieldref": FieldRef("fst", x),
        "bvexpr": bv,
        "null": NULL,
        "istype": IsType(x, INT),
        "leq": LeqZero(lin),
        "and": And((IsType(x, INT), NotType(y, BOOL))),
        "or": Or((IsType(x, TRUE), IsType(x, FALSE))),
        "alias": Alias(x, y),
        "congruence": Congruence(x, 2, 1),
        "bvprop": BVProp("=", bv, x, 8),
        "int_t": INT,
        "bool_t": BOOL,
        "pair_t": Pair(INT, BOOL),
        "vec_t": Vec(INT),
        "refine": Refine("v", INT, LeqZero(LinExpr(0, ((Var("v"), 1),)))),
        "fun": Fun((("a", INT),), TypeResult(BOOL, TT, FF, NULL, ())),
        "poly": Poly(("A",), Fun((("a", TVar("A")),), TypeResult(TVar("A")))),
        "result": TypeResult(INT, TT, TT, x, (("w", INT),)),
    }


class TestDigestStability:
    @pytest.mark.parametrize("name", sorted(PINNED_DIGESTS))
    def test_digest_matches_pinned(self, name):
        assert node_digest(_pinned_values()[name]) == PINNED_DIGESTS[name]


class TestCompactness:
    @pytest.mark.parametrize(
        "node",
        [
            Var("x"),
            obj_int(7),
            PairObj(Var("x"), Var("y")),
            LinExpr(1, ((Var("x"), 2),)),
            IsType(Var("x"), INT),
            LeqZero(LinExpr(0, ((Var("x"), 1),))),
            And((IsType(Var("x"), INT),)),
            Pair(INT, STR),
            Refine("v", INT, lin_le(Var("v"), obj_int(9))),
        ],
    )
    def test_no_instance_dict(self, node):
        assert not hasattr(node, "__dict__")

    def test_frozen(self):
        node = IsType(Var("x"), INT)
        with pytest.raises(Exception):
            node.obj = Var("y")
