"""Hash-consing invariants of the ``tr`` value layer.

Stable ids must be *injective on values* (distinct ids ⟹ distinct
values — the property cache keys rely on) and cheap; cached hashes and
reprs must agree with the structural ones; and the value classes must
stay compact (``__slots__``, no instance dict).
"""

import pytest

from repro.tr.intern import intern_stats, node_id
from repro.tr.objects import LinExpr, PairObj, Var, lin_add, obj_int
from repro.tr.props import And, IsType, LeqZero, lin_le, make_and
from repro.tr.types import INT, STR, Pair, Refine, Union


class TestNodeIds:
    def test_equal_values_share_an_id(self):
        a = IsType(Var("q"), Pair(INT, STR))
        b = IsType(Var("q"), Pair(INT, STR))
        assert a is not b
        assert node_id(a) == node_id(b)

    def test_distinct_values_get_distinct_ids(self):
        ids = {
            node_id(IsType(Var(f"v{i}"), INT)) for i in range(100)
        }
        assert len(ids) == 100

    def test_id_is_stamped_once(self):
        node = lin_le(Var("w"), obj_int(3))
        first = node_id(node)
        assert node_id(node) == first

    def test_stats_count_sharing(self):
        before = intern_stats()["shared"]
        node_id(IsType(Var("stat-probe"), INT))
        node_id(IsType(Var("stat-probe"), INT))
        assert intern_stats()["shared"] > before


class TestCachedHash:
    def test_hash_agrees_with_equality(self):
        deep_a = make_and(
            [lin_le(Var("a"), obj_int(i)) for i in range(10)]
        )
        deep_b = make_and(
            [lin_le(Var("a"), obj_int(i)) for i in range(10)]
        )
        assert deep_a == deep_b
        assert hash(deep_a) == hash(deep_b)

    def test_repr_cached_and_stable(self):
        expr = lin_add(Var("a"), obj_int(2))
        assert repr(expr) == repr(expr)
        twin = lin_add(Var("a"), obj_int(2))
        assert repr(twin) == repr(expr)

    def test_unequal_values_unequal(self):
        assert IsType(Var("a"), INT) != IsType(Var("b"), INT)
        assert Union((INT, STR)) != Union((STR, INT))


class TestCompactness:
    @pytest.mark.parametrize(
        "node",
        [
            Var("x"),
            obj_int(7),
            PairObj(Var("x"), Var("y")),
            LinExpr(1, ((Var("x"), 2),)),
            IsType(Var("x"), INT),
            LeqZero(LinExpr(0, ((Var("x"), 1),))),
            And((IsType(Var("x"), INT),)),
            Pair(INT, STR),
            Refine("v", INT, lin_le(Var("v"), obj_int(9))),
        ],
    )
    def test_no_instance_dict(self, node):
        assert not hasattr(node, "__dict__")

    def test_frozen(self):
        node = IsType(Var("x"), INT)
        with pytest.raises(Exception):
            node.obj = Var("y")
