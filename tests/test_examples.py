"""Every ``examples/*.py`` script must run clean, forever.

The examples are the documentation's canonical programs — the
tutorial's snippets are lifted from them and the README promises they
exit 0.  Running each one as a real subprocess (the way a reader
would) pins that the docs can never silently rot against the current
syntax or API.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def _env():
    src_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
    return env


def test_examples_exist():
    # a rename or an empty glob must fail loudly, not skip silently
    assert len(EXAMPLES) >= 6


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_clean(script):
    done = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        env=_env(),
        timeout=600,
        cwd=str(EXAMPLES_DIR.parent),
    )
    assert done.returncode == 0, (
        f"{script.name} exited {done.returncode}\n"
        f"--- stdout ---\n{done.stdout}\n--- stderr ---\n{done.stderr}"
    )
    assert done.stdout.strip(), f"{script.name} printed nothing"


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_docstring_has_run_line(script):
    """Each example documents how to run it, with the working command."""
    source = script.read_text()
    assert f"Run:  PYTHONPATH=src python examples/{script.name}" in source, (
        f"{script.name} docstring must carry the canonical "
        f"'Run:  PYTHONPATH=src python examples/{script.name}' line"
    )


def test_readme_documents_every_example():
    """The README's Examples table covers each script by name."""
    readme = (EXAMPLES_DIR.parent / "README.md").read_text()
    for script in EXAMPLES:
        assert script.name in readme, f"README.md does not mention {script.name}"
