"""Occurrence typing scenarios (section 2): the heart of λTR inside λRTR."""

import pytest

from repro.checker.check import check_program_text
from repro.checker.errors import CheckError


def checks(src):
    check_program_text(src)
    return True


def fails(src):
    with pytest.raises(CheckError):
        check_program_text(src)
    return True


class TestPredicates:
    def test_int_predicate_narrows_then(self):
        assert checks(
            """
            (: f : (U Int Bool) -> Int)
            (define (f x) (if (int? x) x 0))
            """
        )

    def test_else_branch_narrows_negatively(self):
        assert checks(
            """
            (: f : (U Int Bool) -> Bool)
            (define (f x) (if (int? x) #t x))
            """
        )

    def test_without_test_union_not_usable(self):
        assert fails(
            """
            (: f : (U Int Bool) -> Int)
            (define (f x) (+ x 1))
            """
        )

    def test_least_significant_bit_shape(self):
        # the paper's §2 example, with vectors in place of lists
        assert checks(
            """
            (: least-significant-bit : (U Int (Vecof Int)) -> Int)
            (define (least-significant-bit n)
              (if (int? n)
                  (if (even? n) 0 1)
                  (if (< 0 (len n)) (vec-ref n (- (len n) 1)) 0)))
            """
        )

    def test_pair_predicate(self):
        assert checks(
            """
            (: f : (U Int (Pairof Int Int)) -> Int)
            (define (f x) (if (pair? x) (fst x) x))
            """
        )

    def test_not_inverts(self):
        assert checks(
            """
            (: f : (U Int Bool) -> Int)
            (define (f x) (if (not (int? x)) 0 x))
            """
        )

    def test_nested_narrowing(self):
        assert checks(
            """
            (: f : (U Int Bool Str) -> Int)
            (define (f x)
              (cond
                [(int? x) x]
                [(bool? x) (if x 1 0)]
                [else (string-length x)]))
            """
        )


class TestLogicalConnectives:
    def test_and_narrows_both(self):
        assert checks(
            """
            (: f : (U Int Bool) (U Int Bool) -> Int)
            (define (f x y)
              (if (and (int? x) (int? y)) (+ x y) 0))
            """
        )

    def test_or_insufficient_for_both(self):
        assert fails(
            """
            (: f : (U Int Bool) (U Int Bool) -> Int)
            (define (f x y)
              (if (or (int? x) (int? y)) (+ x y) 0))
            """
        )

    def test_abstracted_predicate_via_let(self):
        # "abstraction and combination of conditional tests properly works"
        assert checks(
            """
            (: f : (U Int Bool) -> Int)
            (define (f x)
              (let ([test (int? x)])
                (if test x 0)))
            """
        )

    def test_boolean_result_carries_props(self):
        assert checks(
            """
            (: check : (U Int Str) -> Bool)
            (define (check x) (int? x))
            (: use : (U Int Str) -> Int)
            (define (use x) (if (int? x) (+ x 1) 0))
            """
        )


class TestFalsyNarrowing:
    def test_false_removed_in_then(self):
        assert checks(
            """
            (: f : (U Int False) -> Int)
            (define (f x) (if x x 0))
            """
        )

    def test_truthy_value_in_test_position(self):
        assert checks(
            """
            (: f : (U Int False) -> Int)
            (define (f x) (if (not x) 0 x))
            """
        )


class TestEqualNarrowing:
    def test_equal_aliases_lengths(self):
        # equal? emits an alias: the §2.1 dot-product dynamic check
        assert checks(
            """
            (: f : (Vecof Int) (Vecof Int) Int -> Int)
            (define (f A B i)
              (if (equal? (len A) (len B))
                  (if (and (<= 0 i) (< i (len A)))
                      (safe-vec-ref B i)
                      0)
                  0))
            """
        )

    def test_numeric_equality_propagates(self):
        assert checks(
            """
            (: f : Int Int -> Nat)
            (define (f x y)
              (if (= x y)
                  (if (< 0 x) y 1)
                  1))
            """
        )
