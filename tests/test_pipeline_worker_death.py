"""RTR-003: the resident worker pool must survive a dying worker.

On Python 3.11, ``multiprocessing.Pool.map`` never completes if a
worker process dies mid-task — the dead worker's chunk is silently
lost.  Under the daemon that wedged the single engine lane forever.
``WorkerPool._map_resilient`` detects the death (liveness + PID-set
watchdog), tears the broken pool down, and re-runs the batch
in-process.

The dying worker is injected by monkeypatching the chunk runner with a
self-``SIGKILL``: fork workers inherit the patched module, so the
first pooled chunk kills its worker exactly the way an OOM kill would.
"""

import multiprocessing
import os
import signal

import pytest

from repro.batch import pipeline
from repro.batch.pipeline import WorkerPool


def _fork_available() -> bool:
    try:
        return "fork" in multiprocessing.get_all_start_methods()
    except Exception:
        return False


pytestmark = pytest.mark.skipif(
    not _fork_available(), reason="fork start method unavailable"
)


def _suicidal_chunk_runner(args):
    """Simulates an OOM-killed / segfaulted worker: dies mid-task."""
    os.kill(os.getpid(), signal.SIGKILL)


def _modules(tmp_path, count=4):
    paths = []
    for i in range(count):
        path = tmp_path / f"mod{i}.rkt"
        path.write_text(f"(define x{i} {i})\n")
        paths.append(str(path))
    return paths


def test_map_survives_worker_death(tmp_path, monkeypatch):
    paths = _modules(tmp_path)
    monkeypatch.setattr(pipeline, "_run_chunk_warm", _suicidal_chunk_runner)
    with WorkerPool(jobs=2) as pool:
        report = pool.check_many(paths)
        # the batch completed (via the in-process fallback) instead of
        # hanging forever, with full verdicts in input order
        assert report.ok
        assert [v.path for v in report.verdicts] == paths
        # the broken pool was torn down
        assert not pool.alive


def test_pool_recovers_after_worker_death(tmp_path, monkeypatch):
    paths = _modules(tmp_path)
    with WorkerPool(jobs=2) as pool:
        monkeypatch.setattr(pipeline, "_run_chunk_warm", _suicidal_chunk_runner)
        first = pool.check_many(paths)
        assert first.ok and not pool.alive
        # healthy runner restored: the next batch re-forks a fresh pool
        monkeypatch.undo()
        second = pool.check_many(paths)
        assert second.ok
        assert [v.path for v in second.verdicts] == paths
        assert pool.alive  # re-forked and healthy


def test_healthy_pool_still_uses_workers(tmp_path):
    paths = _modules(tmp_path, count=6)
    with WorkerPool(jobs=2) as pool:
        report = pool.check_many(paths)
        assert report.ok
        assert pool.alive  # no fallback triggered
        again = pool.check_many(paths)
        assert again.ok and pool.alive
