"""Tests for the interactive session (REPL core)."""

import pytest

from repro.checker.errors import CheckError
from repro.repl import Session, repl


class TestSession:
    def test_expression(self):
        session = Session()
        assert session.submit("(+ 1 2)") == ["3"]

    def test_definition_then_use(self):
        session = Session()
        assert session.submit("(define (dbl x) (* 2 x))") == []
        assert session.submit("(dbl 21)") == ["42"]

    def test_annotated_definition(self):
        session = Session()
        session.submit("(: inc : Int -> Int) (define (inc x) (+ x 1))")
        assert session.submit("(inc 4)") == ["5"]

    def test_ill_typed_input_leaves_session_unchanged(self):
        session = Session()
        session.submit("(define (dbl x) (* 2 x))")
        with pytest.raises(CheckError):
            session.submit("(dbl #t)")
        # the session still works and `dbl` is still defined
        assert session.submit("(dbl 3)") == ["6"]

    def test_unsafe_access_refused(self):
        session = Session()
        with pytest.raises(CheckError):
            session.submit("(safe-vec-ref (vector 1) 5)")

    def test_names(self):
        session = Session()
        session.submit("(define a 1)")
        session.submit("(define b 2)")
        assert session.names() == ["a", "b"]

    def test_type_of_expression(self):
        session = Session()
        rendered = session.type_of("(+ 1 2)")
        assert "Int" in rendered

    def test_type_of_definition(self):
        session = Session()
        rendered = session.type_of(
            "(: inc : Int -> Int) (define (inc x) (+ x 1))"
        )
        assert rendered.startswith("inc :")

    def test_only_new_results_shown(self):
        session = Session()
        session.submit("(+ 1 1)")
        assert session.submit("(+ 2 2)") == ["4"]


class TestReplLoop:
    def _run(self, lines):
        lines = iter(lines)
        outputs = []

        def fake_input(prompt):
            try:
                return next(lines)
            except StopIteration:
                raise EOFError

        repl(input_fn=fake_input, print_fn=outputs.append)
        return outputs

    def test_banner_and_quit(self):
        outputs = self._run([":quit"])
        assert any("λRTR" in line for line in outputs)

    def test_evaluates(self):
        outputs = self._run(["(+ 1 2)", ":q"])
        assert "3" in outputs

    def test_reports_errors_and_continues(self):
        outputs = self._run(["(+ 1 #t)", "(+ 1 2)", ":q"])
        assert any(line.startswith("error:") for line in outputs)
        assert "3" in outputs

    def test_env_directive(self):
        outputs = self._run(["(define a 5)", ":env", ":q"])
        assert any("a" in line for line in outputs)

    def test_type_directive(self):
        outputs = self._run([":type (< 1 2)", ":q"])
        assert any("Bool" in line for line in outputs)

    def test_blank_lines_ignored(self):
        outputs = self._run(["", "   ", "(+ 1 1)", ":q"])
        assert "2" in outputs
