"""Polymorphism and local type inference (section 4.3)."""

import pytest

from repro.checker.check import check_program_text
from repro.checker.errors import CheckError
from repro.checker.infer import index_flow_vars, instantiate_poly
from repro.syntax.parser import parse_expr_text
from repro.tr.parse import NAT
from repro.tr.results import true_result
from repro.tr.types import (
    BOOL,
    BOT,
    INT,
    Fun,
    Pair,
    Poly,
    Refine,
    TVar,
    Vec,
)


def checks(src):
    check_program_text(src)
    return True


def fails(src):
    with pytest.raises(CheckError):
        check_program_text(src)
    return True


class TestInstantiation:
    def _vec_ref_type(self):
        A = TVar("A")
        return Poly(("A",), Fun((("v", Vec(A)), ("i", INT)), true_result(A)))

    def test_simple_solve(self):
        fun = instantiate_poly(self._vec_ref_type(), [Vec(INT), INT])
        assert fun.result.type == INT

    def test_refined_actual_strips(self):
        # CG-RefLower: a refined vector still instantiates A = Int
        from repro.tr.props import lin_le
        from repro.tr.objects import Var, obj_int

        refined = Refine("v", Vec(INT), lin_le(obj_int(0), obj_int(0)))
        fun = instantiate_poly(self._vec_ref_type(), [refined, INT])
        assert fun.result.type == INT

    def test_unconstrained_solves_to_bot(self):
        A = TVar("A")
        poly = Poly(("A",), Fun((("x", INT),), true_result(A)))
        fun = instantiate_poly(poly, [INT])
        assert fun.result.type == BOT

    def test_arity_mismatch_is_none(self):
        assert instantiate_poly(self._vec_ref_type(), [Vec(INT)]) is None

    def test_multiple_bounds_join(self):
        A = TVar("A")
        poly = Poly(("A",), Fun((("x", A), ("y", A)), true_result(A)))
        fun = instantiate_poly(poly, [INT, BOOL])
        from repro.tr.types import union_members

        assert set(union_members(fun.result.type)) >= {INT}

    def test_nested_structure(self):
        A = TVar("A")
        poly = Poly(("A",), Fun((("p", Pair(A, A)),), true_result(A)))
        fun = instantiate_poly(poly, [Pair(INT, INT)])
        assert fun.result.type == INT


class TestPolymorphicPrograms:
    def test_vec_ref_elem_type_flows(self):
        assert checks(
            """
            (: first-pair : (Vecof (Pairof Int Bool)) -> Int)
            (define (first-pair v)
              (if (< 0 (len v))
                  (fst (safe-vec-ref v 0))
                  0))
            """
        )

    def test_nested_vectors(self):
        assert checks(
            """
            (: inner : (Vecof (Vecof Int)) -> Int)
            (define (inner dss)
              (if (< 0 (len dss))
                  (len (safe-vec-ref dss 0))
                  0))
            """
        )

    def test_elem_type_mismatch_rejected(self):
        assert fails(
            """
            (: f : (Vecof Bool) Int -> Int)
            (define (f v i) (+ 1 (vec-ref v i)))
            """
        )

    def test_vec_set_elem_checked(self):
        assert fails(
            """
            (: f : (Vecof Int) -> Void)
            (define (f v) (vec-set! v 0 #t))
            """
        )

    def test_make_vec_poly(self):
        assert checks(
            """
            (: zeros : Nat -> (Vecof Int))
            (define (zeros n) (make-vec n 0))
            """
        )

    def test_len_poly_with_refined_result(self):
        assert checks(
            """
            (: f : (Vecof Bool) -> Nat)
            (define (f v) (len v))
            """
        )


class TestIndexFlow:
    def _flows(self, src):
        lam = parse_expr_text(src)
        return index_flow_vars(lam.body)

    def test_direct_index_use(self):
        flows = self._flows("(λ (v i) (vec-ref v i))")
        assert any(name.startswith("i") for name in flows)

    def test_indirect_through_let(self):
        flows = self._flows("(λ (v pos) (let ([i pos]) (vec-ref v i)))")
        assert any(name.startswith("pos") for name in flows)

    def test_non_index_not_flagged(self):
        flows = self._flows("(λ (v x) (+ x (vec-ref v 0)))")
        assert not any(name.startswith("x") for name in flows)

    def test_arithmetic_in_index_position(self):
        flows = self._flows("(λ (v k) (vec-ref v (+ k 1)))")
        assert any(name.startswith("k") for name in flows)
