"""The PR 1 proof cache is transparent under fuzz workloads.

The incremental engine shares a process-wide :class:`Logic` across
checkers: content-addressed proof/subtype/lookup caches plus persistent
theory sessions.  The safety contract is *transparency* — a cache hit
returns exactly what a cold search would recompute.  These property
tests drive that contract with generated programs: for every program
(and its ill-typed mutants), checking with a fresh ``Logic`` and with
the shared one must produce identical verdicts and identical types.
"""

import pytest

from repro.checker.check import Checker, shared_logic
from repro.checker.errors import CheckError
from repro.fuzz import generate_program
from repro.logic.prove import Logic
from repro.syntax.parser import parse_program

SEED = 987654321
PROGRAMS = 40
MUTANT_SAMPLE = 2


def _verdict(checker, source):
    """(accepted, types-or-error-class) for one checker run."""
    program = parse_program(source)
    try:
        return True, checker.check_program(program)
    except CheckError as exc:
        return False, type(exc).__name__


@pytest.fixture(scope="module")
def specs():
    return [generate_program(SEED, i) for i in range(PROGRAMS)]


class TestFreshVsShared:
    def test_same_verdicts_and_types_on_generated_programs(self, specs):
        for spec in specs:
            fresh_ok, fresh_out = _verdict(Checker(logic=Logic()), spec.source)
            shared_ok, shared_out = _verdict(
                Checker(logic=shared_logic()), spec.source
            )
            assert fresh_ok == shared_ok, spec.source
            if fresh_ok:
                assert fresh_out == shared_out, spec.source

    def test_same_verdicts_on_mutants(self, specs):
        for spec in specs:
            for mutant in spec.mutants[:MUTANT_SAMPLE]:
                fresh_ok, _ = _verdict(Checker(logic=Logic()), mutant.source)
                shared_ok, _ = _verdict(
                    Checker(logic=shared_logic()), mutant.source
                )
                assert fresh_ok == shared_ok, mutant.source

    def test_shared_rechecks_are_stable(self, specs):
        """A warm shared cache returns the same answer as its own first
        pass (hits replace searches, never answers)."""
        logic = shared_logic()
        for spec in specs[:10]:
            first = _verdict(Checker(logic=logic), spec.source)
            second = _verdict(Checker(logic=logic), spec.source)
            assert first == second

    def test_shared_cache_actually_hits(self, specs):
        """The property above is not vacuous: rechecking through the
        shared Logic really does serve proofs from cache."""
        logic = Logic()
        checker = Checker(logic=logic)
        source = specs[0].source
        checker.check_program(parse_program(source))
        logic.stats.reset()
        Checker(logic=logic).check_program(parse_program(source))
        assert logic.stats.prove_hits > 0
