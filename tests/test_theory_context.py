"""The incremental theory-context API (push / assert_prop / pop).

Each theory's context must agree with its batch ``entails`` on every
assumption set reachable through pushes and pops — the context is an
optimisation, never a semantics change.  The tests drive each concrete
context (linear arithmetic, bitvectors, congruence), the registry
session that multiplexes them, and the incremental solver structures
underneath.
"""

import pytest

from repro.solvers.linear import (
    SAT,
    UNSAT,
    Constraint,
    IncrementalConstraintSet,
    fm_entails,
)
from repro.solvers.sat import IncrementalSatSolver
from repro.theories.bitvec import BitvectorTheory
from repro.theories.congruence import CongruenceTheory
from repro.theories.linarith import LinearArithmeticTheory
from repro.theories.registry import default_registry
from repro.tr.objects import BVExpr, Var, obj_int
from repro.tr.props import BVProp, Congruence, lin_le, lin_lt

x = Var("x")
y = Var("y")


def leq(lhs, rhs):
    return lin_le(lhs, rhs)


class TestLinArithContext:
    def test_incremental_matches_batch(self):
        theory = LinearArithmeticTheory()
        ctx = theory.context()
        facts = [leq(x, obj_int(5)), leq(obj_int(0), x)]
        for fact in facts:
            ctx.assert_prop(fact)
        goal = leq(x, obj_int(10))
        assert ctx.entails(goal) == theory.entails(facts, goal) == True

    def test_push_pop_restores_answers(self):
        ctx = LinearArithmeticTheory().context()
        ctx.assert_prop(leq(x, obj_int(5)))
        tight = leq(x, obj_int(3))
        assert not ctx.entails(tight)
        ctx.push()
        ctx.assert_prop(leq(x, obj_int(2)))
        assert ctx.entails(tight)
        ctx.pop()
        assert not ctx.entails(tight)

    def test_contradiction_scoped_to_frame(self):
        ctx = LinearArithmeticTheory().context()
        ctx.assert_prop(leq(obj_int(0), x))
        assert not ctx.is_unsat()
        ctx.push()
        ctx.assert_prop(lin_lt(x, obj_int(0)))
        assert ctx.is_unsat()
        assert ctx.entails(leq(obj_int(99), x))  # ex falso
        ctx.pop()
        assert not ctx.is_unsat()
        assert not ctx.entails(leq(obj_int(99), x))

    def test_clone_is_independent(self):
        ctx = LinearArithmeticTheory().context()
        ctx.assert_prop(leq(x, obj_int(5)))
        fork = ctx.clone()
        fork.assert_prop(leq(x, obj_int(1)))
        assert fork.entails(leq(x, obj_int(2)))
        assert not ctx.entails(leq(x, obj_int(2)))

    def test_pop_without_push_raises(self):
        with pytest.raises(IndexError):
            LinearArithmeticTheory().context().pop()


class TestCongruenceContext:
    def test_matches_batch(self):
        theory = CongruenceTheory()
        ctx = theory.context()
        fact = Congruence(x, 2, 0)
        ctx.assert_prop(fact)
        goal = Congruence(x, 2, 0)
        assert ctx.entails(goal) == theory.entails([fact], goal) == True
        assert not ctx.entails(Congruence(x, 2, 1))

    def test_crt_merge_and_pop(self):
        ctx = CongruenceTheory().context()
        ctx.assert_prop(Congruence(x, 2, 0))
        ctx.push()
        ctx.assert_prop(Congruence(x, 3, 1))
        # x ≡ 0 (mod 2) ∧ x ≡ 1 (mod 3)  ⟹  x ≡ 4 (mod 6)
        assert ctx.entails(Congruence(x, 6, 4))
        ctx.pop()
        assert not ctx.entails(Congruence(x, 6, 4))
        assert ctx.entails(Congruence(x, 2, 0))

    def test_inconsistency_latched_and_released(self):
        ctx = CongruenceTheory().context()
        ctx.assert_prop(Congruence(x, 2, 0))
        ctx.push()
        ctx.assert_prop(Congruence(x, 2, 1))  # contradicts
        assert ctx.entails(Congruence(y, 5, 3))  # ex falso
        ctx.pop()
        assert not ctx.entails(Congruence(y, 5, 3))


class TestBitvectorContext:
    def _byte_facts(self, var):
        return [leq(obj_int(0), var), leq(var, obj_int(255))]

    def test_matches_batch(self):
        theory = BitvectorTheory()
        ctx = theory.context()
        facts = self._byte_facts(x)
        for fact in facts:
            ctx.assert_prop(fact)
        goal = BVProp("≤", BVExpr("and", (x, 15), 8), obj_int(15), 8)
        assert ctx.entails(goal) == theory.entails(facts, goal) == True

    def test_goal_memoised_and_invalidated(self):
        ctx = BitvectorTheory().context()
        for fact in self._byte_facts(x):
            ctx.assert_prop(fact)
        goal = BVProp("≤", x, obj_int(255), 8)
        assert ctx.entails(goal)
        assert ctx.entails(goal)  # memo hit
        ctx.push()
        ctx.assert_prop(leq(x, obj_int(10)))
        assert ctx.entails(BVProp("≤", x, obj_int(10), 8))
        ctx.pop()
        assert not ctx.entails(BVProp("≤", x, obj_int(10), 8))

    def test_ungroundable_goal_declined(self):
        ctx = BitvectorTheory().context()
        # No range facts for x: the encoding must decline, not guess.
        assert not ctx.entails(BVProp("≤", x, obj_int(255), 8))


class TestRegistrySession:
    def test_session_agrees_with_batch_registry(self):
        registry = default_registry()
        facts = [leq(x, obj_int(5)), Congruence(x, 2, 0)]
        session = registry.session()
        session.assert_all(facts)
        for goal in (leq(x, obj_int(9)), Congruence(x, 2, 0)):
            assert session.entails(goal) == registry.entails(facts, goal) == True

    def test_push_pop_mirrors_all_theories(self):
        session = default_registry().session()
        session.assert_prop(leq(obj_int(0), x))
        session.push()
        session.assert_prop(lin_lt(x, obj_int(0)))
        assert session.linear_unsat()
        session.pop()
        assert not session.linear_unsat()

    def test_derive_reuses_prefix(self):
        counters = {}
        session = default_registry().session(counters)
        session.assert_prop(leq(x, obj_int(5)))
        child = session.derive([leq(y, obj_int(3))])
        assert child.entails(leq(y, obj_int(7)))
        assert child.entails(leq(x, obj_int(7)))
        # the parent must not see the derived assumption
        assert not session.entails(leq(y, obj_int(7)))
        assert counters["linear-arithmetic"] >= 1

    def test_query_counters(self):
        counters = {}
        session = default_registry().session(counters)
        session.assert_prop(leq(x, obj_int(5)))
        session.entails(leq(x, obj_int(9)))
        session.entails(leq(x, obj_int(9)))  # memo hit: no extra query
        assert counters["linear-arithmetic"] == 1


class TestAcceptsPrefilter:
    def test_registry_filters_assumptions_per_theory(self):
        from repro.theories.base import Theory
        from repro.tr.props import TheoryProp

        seen = {}

        class Spy(Theory):
            name = "spy"

            def accepts(self, goal):
                return isinstance(goal, Congruence)

            def entails(self, assumptions, goal):
                seen["assumptions"] = list(assumptions)
                return False

        registry = default_registry()
        registry.register(Spy())
        facts = [leq(x, obj_int(5)), Congruence(x, 2, 0)]
        registry.entails(facts, Congruence(x, 4, 0))
        # the spy only ever saw atoms it accepts
        assert seen["assumptions"] == [Congruence(x, 2, 0)]


class TestIncrementalConstraintSet:
    def test_dedup_and_memo(self):
        cs = IncrementalConstraintSet()
        con = Constraint.make({"x": 1}, -5)
        cs.add(con)
        cs.add(con)
        assert len(cs) == 1
        goal = Constraint.make({"x": 1}, -10)
        assert cs.entails(goal) == fm_entails([con], goal)

    def test_push_pop_and_satisfiable(self):
        cs = IncrementalConstraintSet()
        cs.add(Constraint.make({"x": -1}, 0))  # 0 ≤ x
        assert cs.satisfiable() == SAT
        cs.push()
        cs.add(Constraint.make({"x": 1}, 1))  # x ≤ -1
        assert cs.satisfiable() == UNSAT
        cs.pop()
        assert cs.satisfiable() == SAT


class TestIncrementalSatSolver:
    def test_push_pop(self):
        solver = IncrementalSatSolver()
        solver.add_clause([1, 2])
        assert solver.check_sat()
        solver.push()
        solver.add_clause([-1])
        solver.add_clause([-2])
        assert not solver.check_sat()
        solver.pop()
        assert solver.check_sat()

    def test_memo_survives_no_op_frames(self):
        solver = IncrementalSatSolver()
        solver.add_clause([1])
        assert solver.check_sat()
        solver.push()
        solver.pop()
        assert solver.check_sat()
