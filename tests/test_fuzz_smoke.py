"""Bounded fuzz smoke campaign (the CI ``fuzz`` job's pytest half).

Marked ``fuzz`` so the dedicated CI job can select it and scale it via
environment knobs; the defaults stay inside a tier-1-friendly budget.
"""

import os

import pytest

from repro.fuzz import FuzzConfig, run_fuzz

pytestmark = pytest.mark.fuzz


def _env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, default))


def test_bounded_smoke_campaign():
    config = FuzzConfig(
        seed=_env_int("FUZZ_SEED", 42),
        count=_env_int("FUZZ_COUNT", 120),
        shards=_env_int("FUZZ_SHARDS", 2),
        max_mutants=2,
    )
    report = run_fuzz(config)
    detail = "\n\n".join(
        v.describe() + "\n" + (v.shrunk or v.source) for v in report.violations
    )
    assert report.ok, f"soundness violations:\n{detail}"
    assert report.programs == config.count
    assert report.accepted == config.count
    assert report.mutants_rejected == report.mutants_checked
