"""Batched theory dispatch must be answer-equivalent to single goals.

``entails_batch`` (theory, context, session and registry level) exists
purely to collapse N session round-trips into one — any divergence
from per-goal ``entails`` answers would be a soundness/precision bug.
"""

import pytest

from repro.theories.base import BatchContext, Theory
from repro.theories.registry import default_registry
from repro.tr.objects import BVExpr, Var, obj_int, lin_add, lin_scale
from repro.tr.props import BVProp, lin_le, make_congruence

X, Y = Var("x"), Var("y")


def _assumptions():
    return [
        lin_le(obj_int(0), X),          # 0 ≤ x
        lin_le(X, obj_int(10)),         # x ≤ 10
        lin_le(obj_int(0), Y),          # 0 ≤ y
        lin_le(Y, obj_int(255)),        # y ≤ 255
        make_congruence(X, 2, 0),       # x even
    ]


def _goals():
    return [
        lin_le(X, obj_int(20)),                   # provable (linarith)
        lin_le(obj_int(5), X),                    # not provable
        lin_le(lin_add(X, Y), obj_int(265)),      # provable (linarith)
        make_congruence(X, 2, 0),                 # provable (congruence)
        make_congruence(X, 2, 1),                 # refutable
        make_congruence(lin_scale(2, Y), 2, 0),   # provable (linear residue)
        BVProp("≤", BVExpr("and", (X, Y), 8), Y, 8),    # provable (bitvec)
        BVProp("<", Y, BVExpr("and", (X, Y), 8), 8),    # not provable
        lin_le(X, obj_int(20)),                   # duplicate of goal 0
    ]


class TestRegistryBatch:
    def test_batch_equals_single(self):
        registry = default_registry()
        single = [registry.entails(_assumptions(), g) for g in _goals()]
        batch = registry.entails_batch(_assumptions(), _goals())
        assert batch == single
        assert any(batch) and not all(batch)  # the set is discriminating

    def test_session_batch_equals_single_and_memoises(self):
        registry = default_registry()
        loner = registry.session()
        loner.assert_all(_assumptions())
        batcher = registry.session()
        batcher.assert_all(_assumptions())

        single = [loner.entails(g) for g in _goals()]
        batch = batcher.entails_batch(_goals())
        assert batch == single
        # memo consistency both directions
        assert batcher.entails_batch(_goals()) == batch
        assert [batcher.entails(g) for g in _goals()] == batch
        assert [loner.entails(g) for g in _goals()] == single

    def test_counters_match_single_goal_accounting(self):
        registry = default_registry()
        loner = registry.session()
        loner.assert_all(_assumptions())
        batcher = registry.session()
        batcher.assert_all(_assumptions())
        for goal in _goals():
            loner.entails(goal)
        batcher.entails_batch(_goals())
        assert batcher.counters == loner.counters

    def test_empty_batch(self):
        session = default_registry().session()
        assert session.entails_batch([]) == []


class TestContextBatch:
    @pytest.mark.parametrize("index", range(3))
    def test_each_context_batch_equals_single(self, index):
        registry = default_registry()
        theory = registry.theories[index]
        single_ctx = theory.context()
        batch_ctx = theory.context()
        for prop in _assumptions():
            if theory.accepts(prop):
                single_ctx.assert_prop(prop)
                batch_ctx.assert_prop(prop)
        goals = [g for g in _goals()]
        single = [single_ctx.entails(g) if theory.accepts(g) else False for g in goals]
        batch = batch_ctx.entails_batch(goals)
        assert batch == single


class _CountingTheory(Theory):
    """Accepts everything linear; counts batch invocations."""

    name = "counting"

    def __init__(self):
        self.batch_calls = 0
        self.single_calls = 0

    def accepts(self, goal):
        return True

    def entails(self, assumptions, goal):
        self.single_calls += 1
        return False

    def entails_batch(self, assumptions, goals):
        self.batch_calls += 1
        return [self.entails(assumptions, g) for g in goals]


def test_batch_context_flattens_assumptions_once():
    theory = _CountingTheory()
    context = BatchContext(theory)
    for prop in _assumptions():
        context.assert_prop(prop)
    goals = _goals()
    answers = context.entails_batch(goals)
    assert answers == [False] * len(goals)
    assert theory.batch_calls == 1  # one dispatch for the whole batch
    # memo: a second batch issues no further theory work
    assert context.entails_batch(goals) == answers
    assert theory.batch_calls == 1
