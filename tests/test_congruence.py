"""Tests for the congruence (parity) theory — the third §3.4 extension."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.checker.check import check_program_text
from repro.checker.errors import CheckError
from repro.theories.congruence import CongruenceTheory, merge_congruences
from repro.tr.objects import Var, lin_add, lin_scale, obj_int
from repro.tr.props import Congruence, FF, TT, make_congruence
from repro.tr.props import negate_prop

x, y = Var("x"), Var("y")


class TestMergeCongruences:
    def test_same_modulus_consistent(self):
        assert merge_congruences((2, 1), (2, 1)) == (2, 1)

    def test_same_modulus_inconsistent(self):
        assert merge_congruences((2, 0), (2, 1)) is None

    def test_crt_coprime(self):
        # x ≡ 1 (mod 2), x ≡ 2 (mod 3)  →  x ≡ 5 (mod 6)
        assert merge_congruences((2, 1), (3, 2)) == (6, 5)

    def test_crt_shared_factor_consistent(self):
        # x ≡ 2 (mod 4), x ≡ 0 (mod 6): gcd 2, 2 ≡ 0? 2 % 2 == 0 ✓ → mod 12
        merged = merge_congruences((4, 2), (6, 0))
        assert merged == (12, 6)

    def test_crt_shared_factor_inconsistent(self):
        # x ≡ 1 (mod 4) and x ≡ 0 (mod 6): 1 ≢ 0 (mod 2)
        assert merge_congruences((4, 1), (6, 0)) is None

    @settings(max_examples=100, deadline=None)
    @given(st.integers(1, 12), st.integers(0, 11), st.integers(1, 12), st.integers(0, 11))
    def test_merge_matches_brute_force(self, m1, r1, m2, r2):
        r1, r2 = r1 % m1, r2 % m2
        merged = merge_congruences((m1, r1), (m2, r2))
        witnesses = [
            n for n in range(200) if n % m1 == r1 and n % m2 == r2
        ]
        if merged is None:
            assert witnesses == []
        else:
            m, r = merged
            assert witnesses
            assert all(w % m == r for w in witnesses)


class TestConstructor:
    def test_normalises_residue(self):
        assert make_congruence(x, 2, 5) == Congruence(x, 2, 1)

    def test_constant_folds(self):
        assert make_congruence(obj_int(4), 2, 0) == TT
        assert make_congruence(obj_int(5), 2, 0) == FF

    def test_negation_is_other_residues(self):
        neg = negate_prop(make_congruence(x, 2, 0))
        assert neg == Congruence(x, 2, 1)

    def test_negation_higher_modulus(self):
        from repro.tr.props import Or

        neg = negate_prop(make_congruence(x, 3, 0))
        assert isinstance(neg, Or)
        assert len(neg.disjuncts) == 2


class TestSolver:
    def setup_method(self):
        self.theory = CongruenceTheory()

    def test_direct_fact(self):
        facts = [make_congruence(x, 2, 0)]
        assert self.theory.entails(facts, make_congruence(x, 2, 0))
        assert not self.theory.entails(facts, make_congruence(x, 2, 1))

    def test_linear_combination(self):
        # x even ⟹ x + 1 odd
        facts = [make_congruence(x, 2, 0)]
        goal = make_congruence(lin_add(x, obj_int(1)), 2, 1)
        assert self.theory.entails(facts, goal)

    def test_scaling_is_free(self):
        # 2x is even with no assumptions at all
        goal = make_congruence(lin_scale(2, x), 2, 0)
        assert self.theory.entails([], goal)

    def test_sum_of_parities(self):
        facts = [make_congruence(x, 2, 1), make_congruence(y, 2, 1)]
        goal = make_congruence(lin_add(x, y), 2, 0)
        assert self.theory.entails(facts, goal)

    def test_finer_modulus_implies_coarser(self):
        # x ≡ 2 (mod 4) ⟹ x even
        facts = [make_congruence(x, 4, 2)]
        assert self.theory.entails(facts, make_congruence(x, 2, 0))

    def test_coarser_does_not_imply_finer(self):
        facts = [make_congruence(x, 2, 0)]
        assert not self.theory.entails(facts, make_congruence(x, 4, 0))

    def test_inconsistent_assumptions_entail_anything(self):
        facts = [make_congruence(x, 2, 0), make_congruence(x, 2, 1)]
        assert self.theory.entails(facts, make_congruence(y, 7, 3))

    def test_unknown_atom_declined(self):
        assert not self.theory.entails([], make_congruence(x, 2, 0))


class TestCheckerIntegration:
    def test_double_is_even(self):
        check_program_text(
            """
            (: double : Int -> [r : Int #:where (even r)])
            (define (double x) (* 2 x))
            """
        )

    def test_succ_flips_parity(self):
        check_program_text(
            """
            (: succ-of-even : [x : Int #:where (even x)]
               -> [r : Int #:where (odd r)])
            (define (succ-of-even x) (+ x 1))
            """
        )

    def test_occurrence_typing_with_even_predicate(self):
        check_program_text(
            """
            (: next-even : Int -> [r : Int #:where (even r)])
            (define (next-even n) (if (even? n) n (+ n 1)))
            """
        )

    def test_odd_predicate_else_branch(self):
        check_program_text(
            """
            (: to-odd : Int -> [r : Int #:where (odd r)])
            (define (to-odd n) (if (odd? n) n (+ n 1)))
            """
        )

    def test_wrong_parity_rejected(self):
        with pytest.raises(CheckError):
            check_program_text(
                """
                (: f : Int -> [r : Int #:where (even r)])
                (define (f x) (+ (* 2 x) 1))
                """
            )

    def test_parity_not_assumed_for_unknowns(self):
        with pytest.raises(CheckError):
            check_program_text(
                """
                (: f : Int -> [r : Int #:where (even r)])
                (define (f x) x)
                """
            )

    def test_divisible_syntax(self):
        check_program_text(
            """
            (: triple : Int -> [r : Int #:where (divisible r 3)])
            (define (triple x) (* 3 x))
            """
        )

    def test_runs_consistently(self):
        from repro.interp.eval import run_program_text

        src = """
        (: next-even : Int -> [r : Int #:where (even r)])
        (define (next-even n) (if (even? n) n (+ n 1)))
        (next-even 4)
        (next-even 7)
        """
        check_program_text(src)
        _defs, results = run_program_text(src)
        assert results == (4, 8)
