"""Tests for the study report formatting and result accounting."""

from repro.study.casestudy import AccessReport, LibraryResult, StudyResult
from repro.study.report import (
    corpus_table,
    figure9_table,
    headline,
    math_categories_table,
)


def _lib(name, tier_counts, ops=None, loc=1000):
    total = ops if ops is not None else sum(tier_counts.values())
    return LibraryResult(
        name=name,
        ops=total,
        loc=loc,
        tier_counts=tier_counts,
        mismatches=[],
        invalid_programs=[],
    )


def _study():
    return StudyResult(
        {
            "math": _lib(
                "math",
                {
                    "auto": 25,
                    "annotation": 34,
                    "modification": 13,
                    "beyond-scope": 22,
                    "unimplemented": 6,
                    "unsafe": 2,
                },
                loc=22_503,
            ),
            "plot": _lib("plot", {"auto": 74, "annotation": 6, "beyond-scope": 20}),
            "pict3d": _lib("pict3d", {"auto": 13, "annotation": 33, "beyond-scope": 54}),
        }
    )


class TestLibraryResult:
    def test_percentage(self):
        lib = _lib("x", {"auto": 3, "beyond-scope": 1})
        assert lib.percentage("auto") == 75.0
        assert lib.percentage("missing") == 0.0

    def test_percentage_of_empty_library(self):
        lib = _lib("x", {})
        assert lib.percentage("auto") == 0.0

    def test_verified_ops(self):
        lib = _lib("x", {"auto": 2, "annotation": 3, "beyond-scope": 5})
        assert lib.verified_ops == 5


class TestStudyResult:
    def test_totals(self):
        study = _study()
        assert study.total_ops == 102 + 100 + 100
        assert study.total_auto == 25 + 74 + 13

    def test_auto_percentage(self):
        study = _study()
        expected = 100.0 * (25 + 74 + 13) / (102 + 100 + 100)
        assert abs(study.auto_percentage() - expected) < 1e-9

    def test_empty_study(self):
        study = StudyResult({})
        assert study.auto_percentage() == 0.0


class TestRendering:
    def test_figure9_rows_in_paper_order(self):
        table = figure9_table(_study())
        lines = table.splitlines()
        order = [line.split()[0] for line in lines if line and line.split()[0] in
                 ("plot", "pict3d", "math")]
        assert order == ["plot", "pict3d", "math"]

    def test_figure9_includes_both_measured_and_paper(self):
        table = figure9_table(_study())
        assert "74" in table  # plot auto (both)
        assert "(" in table

    def test_corpus_table_totals(self):
        table = corpus_table(_study())
        assert "total" in table
        assert "56835" in table.replace(",", "")

    def test_math_categories_all_rows(self):
        table = math_categories_table(_study())
        for label in (
            "Automatically verified",
            "Annotations added",
            "Code modified",
            "Beyond our scope",
            "Unimplemented features",
            "Unsafe code",
            "Total verifiable",
        ):
            assert label in table

    def test_math_categories_without_math(self):
        study = StudyResult({"plot": _lib("plot", {"auto": 1})})
        assert "not analysed" in math_categories_table(study)

    def test_headline_mentions_paper_baseline(self):
        assert "50%" in headline(_study())
