"""Error *rendering*: the diagnostics a user actually reads.

The checker's happy paths are exercised everywhere; these tests pin
the failure surfaces — the paper-style error box of
``checker/errors.py``, the messages each ``CheckError`` subclass
produces, the conservative fuel-exhaustion message (this engine's
analogue of a solver timeout), and the REPL's promise to render every
failure as an ``error:`` line and keep going.
"""

import pytest

from repro.checker.check import Checker, check_program_text
from repro.checker.errors import (
    ArityError,
    CheckError,
    UnboundVariable,
    UnsupportedFeature,
)
from repro.logic.prove import Logic
from repro.repl import repl
from repro.syntax.parser import parse_program


class TestErrorBox:
    """The CheckError format mirrors the paper's example error box."""

    def test_expression_banner(self):
        error = CheckError("argument 1, expected:\n  Int\nbut given: Bool",
                           expr="(f #t)")
        rendered = str(error)
        assert rendered.startswith("Type Checker error in ")
        assert "'(f #t)'" in rendered.splitlines()[0]
        assert "expected:" in rendered
        assert "but given: Bool" in rendered

    def test_message_without_expression_has_no_banner(self):
        assert str(CheckError("plain message")) == "plain message"

    def test_expr_is_retained_for_tooling(self):
        error = CheckError("message", expr="(f #t)")
        assert error.expr == "(f #t)"

    def test_subclasses_are_check_errors(self):
        # one except-clause catches every static diagnostic
        for subclass in (UnsupportedFeature, UnboundVariable, ArityError):
            assert issubclass(subclass, CheckError)


class TestCheckerDiagnostics:
    def _fails_with(self, source, exc_type=CheckError):
        with pytest.raises(exc_type) as info:
            check_program_text(source)
        return str(info.value)

    def test_ill_typed_body_renders_expected_computed(self):
        message = self._fails_with(
            "(: f : Int -> Bool)\n(define (f x) x)"
        )
        assert "Type Checker error in" in message
        assert "expected result:" in message
        assert "but computed:" in message

    def test_ill_typed_argument_renders_expected_given(self):
        message = self._fails_with(
            "(: f : Int -> Int)\n(define (f x) x)\n(f #t)"
        )
        assert "Type Checker error in" in message
        assert "expected:" in message
        assert "but given:" in message

    def test_unbound_variable_names_the_identifier(self):
        # identifiers resolve during parsing, so an unknown name is a
        # ParseError with the offending identifier in the message
        from repro.syntax.parser import ParseError

        with pytest.raises(ParseError, match="unbound identifier 'missing'"):
            check_program_text("(define y missing)")

    def test_arity_error(self):
        message = self._fails_with(
            "(: f : Int -> Int)\n(define (f x) x)\n(f 1 2)", ArityError
        )
        assert "argument" in message.lower()

    def test_unsafe_vector_access_renders_refinement(self):
        message = self._fails_with(
            "(define v (vector 1 2))\n(safe-vec-ref v 5)"
        )
        # the expected type is the bounds refinement, pretty-printed
        assert "Refine" in message
        assert "len" in message

    def test_fuel_exhaustion_is_a_conservative_check_error(self):
        """A starved engine (≈ solver timeout) degrades to rejection
        with the same readable box — never a crash or a wrong accept."""
        source = """
        (: max : [x : Int] [y : Int]
           -> [z : Int #:where (and (>= z x) (>= z y))])
        (define (max x y) (if (> x y) x y))
        """
        # sanity: verifies with a healthy engine
        Checker(logic=Logic()).check_program(parse_program(source))
        starved = Logic(max_depth=0)
        with pytest.raises(CheckError) as info:
            Checker(logic=starved).check_program(parse_program(source))
        message = str(info.value)
        assert "Type Checker error in" in message
        assert "expected" in message


class TestReplErrorPaths:
    def _run(self, lines):
        lines = iter(lines)
        outputs = []

        def fake_input(prompt):
            try:
                return next(lines)
            except StopIteration:
                raise EOFError

        repl(input_fn=fake_input, print_fn=outputs.append)
        return outputs

    def _errors(self, outputs):
        return [line for line in outputs if line.startswith("error:")]

    def test_malformed_input_is_reported_and_survived(self):
        outputs = self._run(["(+ 1", "(+ 1 2)", ":q"])
        assert len(self._errors(outputs)) == 1
        assert "3" in outputs

    def test_ill_typed_program_renders_the_error_box(self):
        outputs = self._run(["(: f : Int -> Bool) (define (f x) x)", ":q"])
        errors = self._errors(outputs)
        assert len(errors) == 1
        assert "Type Checker error in" in errors[0]

    def test_unbound_identifier_in_repl(self):
        outputs = self._run(["nope", ":q"])
        errors = self._errors(outputs)
        assert len(errors) == 1
        assert "unbound identifier 'nope'" in errors[0]

    def test_runtime_error_is_reported_not_fatal(self):
        # vec-ref is the *checked* accessor: statically fine, fails at
        # runtime — the REPL must render it and keep accepting input
        outputs = self._run(["(vec-ref (vector 1) 5)", "(+ 2 2)", ":q"])
        assert len(self._errors(outputs)) == 1
        assert "4" in outputs

    def test_rejected_input_leaves_scope_usable(self):
        outputs = self._run(
            [
                "(define (dbl x) (* 2 x))",
                "(dbl #t)",
                "(dbl 21)",
                ":q",
            ]
        )
        assert len(self._errors(outputs)) == 1
        assert "42" in outputs


class TestStatsRendering:
    """The operator-facing stats tables, as counters went per-lane.

    The multi-lane daemon keeps robustness and engine counters per
    lane and merges them for ``stats``; these pins keep the rendered
    tables honest over merged input — additive counters, the
    robustness section split out from kernel rules, and the saturation
    table's clients × lanes matrix.
    """

    def test_engine_stats_table_renders_merged_lane_counters(self):
        from repro.logic.prove import EngineStats
        from repro.study.report import engine_stats_table

        lane_a, lane_b = EngineStats(), EngineStats()
        lane_a.prove_calls, lane_a.prove_hits = 10, 4
        lane_a.rule_hits["budget.cancelled"] = 2
        lane_b.prove_calls = 6
        lane_b.rule_hits["budget.cancelled"] = 1
        lane_b.rule_hits["cache.shard_skipped"] = 3
        merged = EngineStats().merge(lane_a).merge(lane_b)
        rendered = engine_stats_table(merged)
        assert "Incremental proof engine statistics" in rendered
        # counters are additive across lanes: 10 + 6 queries
        assert "      16 queries" in rendered
        # budget/cache counters render under "robustness", not as rules
        robustness = rendered[rendered.index("robustness"):]
        assert "budget.cancelled" in robustness
        assert "       3" in robustness  # 2 + 1, merged
        assert "cache.shard_skipped" in robustness
        assert "kernel rules" not in rendered

    def test_server_saturation_table_renders_the_lane_matrix(self):
        from repro.study.report import server_saturation_table

        rendered = server_saturation_table({
            "corpus_programs": 6,
            "corpus_seed": 2016,
            "cpu_count": 1,
            "requests_per_client": 24,
            "multi_lanes": 4,
            "min_ratio_gate": 0.4,
            "min_median_ratio_gate": 0.6,
            "matrix": [
                {"clients": 1, "lanes": 1, "requests_per_second": 100.0},
                {"clients": 1, "lanes": 4, "requests_per_second": 90.0},
                {"clients": 8, "lanes": 1, "requests_per_second": 200.0},
                {"clients": 8, "lanes": 4, "requests_per_second": 180.0},
            ],
        })
        lines = rendered.splitlines()
        assert lines[0].startswith("Checking service — saturation throughput")
        assert "clients" in lines[2] and "4 lanes" in lines[2]
        # one row per client count, with the multi/single ratio
        assert any("0.90x" in line for line in lines)
        assert any("200.0ips" in line and "180.0ips" in line for line in lines)
        assert "gate: multi-lane ≥ 0.4x single-lane" in lines[-1]
        assert "median ratio ≥ 0.6" in lines[-1]
