"""Error *rendering*: the diagnostics a user actually reads.

The checker's happy paths are exercised everywhere; these tests pin
the failure surfaces — the paper-style error box of
``checker/errors.py``, the messages each ``CheckError`` subclass
produces, the conservative fuel-exhaustion message (this engine's
analogue of a solver timeout), and the REPL's promise to render every
failure as an ``error:`` line and keep going.
"""

import pytest

from repro.checker.check import Checker, check_program_text
from repro.checker.errors import (
    ArityError,
    CheckError,
    UnboundVariable,
    UnsupportedFeature,
)
from repro.logic.prove import Logic
from repro.repl import repl
from repro.syntax.parser import parse_program


class TestErrorBox:
    """The CheckError format mirrors the paper's example error box."""

    def test_expression_banner(self):
        error = CheckError("argument 1, expected:\n  Int\nbut given: Bool",
                           expr="(f #t)")
        rendered = str(error)
        assert rendered.startswith("Type Checker error in ")
        assert "'(f #t)'" in rendered.splitlines()[0]
        assert "expected:" in rendered
        assert "but given: Bool" in rendered

    def test_message_without_expression_has_no_banner(self):
        assert str(CheckError("plain message")) == "plain message"

    def test_expr_is_retained_for_tooling(self):
        error = CheckError("message", expr="(f #t)")
        assert error.expr == "(f #t)"

    def test_subclasses_are_check_errors(self):
        # one except-clause catches every static diagnostic
        for subclass in (UnsupportedFeature, UnboundVariable, ArityError):
            assert issubclass(subclass, CheckError)


class TestCheckerDiagnostics:
    def _fails_with(self, source, exc_type=CheckError):
        with pytest.raises(exc_type) as info:
            check_program_text(source)
        return str(info.value)

    def test_ill_typed_body_renders_expected_computed(self):
        message = self._fails_with(
            "(: f : Int -> Bool)\n(define (f x) x)"
        )
        assert "Type Checker error in" in message
        assert "expected result:" in message
        assert "but computed:" in message

    def test_ill_typed_argument_renders_expected_given(self):
        message = self._fails_with(
            "(: f : Int -> Int)\n(define (f x) x)\n(f #t)"
        )
        assert "Type Checker error in" in message
        assert "expected:" in message
        assert "but given:" in message

    def test_unbound_variable_names_the_identifier(self):
        # identifiers resolve during parsing, so an unknown name is a
        # ParseError with the offending identifier in the message
        from repro.syntax.parser import ParseError

        with pytest.raises(ParseError, match="unbound identifier 'missing'"):
            check_program_text("(define y missing)")

    def test_arity_error(self):
        message = self._fails_with(
            "(: f : Int -> Int)\n(define (f x) x)\n(f 1 2)", ArityError
        )
        assert "argument" in message.lower()

    def test_unsafe_vector_access_renders_refinement(self):
        message = self._fails_with(
            "(define v (vector 1 2))\n(safe-vec-ref v 5)"
        )
        # the expected type is the bounds refinement, pretty-printed
        assert "Refine" in message
        assert "len" in message

    def test_fuel_exhaustion_is_a_conservative_check_error(self):
        """A starved engine (≈ solver timeout) degrades to rejection
        with the same readable box — never a crash or a wrong accept."""
        source = """
        (: max : [x : Int] [y : Int]
           -> [z : Int #:where (and (>= z x) (>= z y))])
        (define (max x y) (if (> x y) x y))
        """
        # sanity: verifies with a healthy engine
        Checker(logic=Logic()).check_program(parse_program(source))
        starved = Logic(max_depth=0)
        with pytest.raises(CheckError) as info:
            Checker(logic=starved).check_program(parse_program(source))
        message = str(info.value)
        assert "Type Checker error in" in message
        assert "expected" in message


class TestReplErrorPaths:
    def _run(self, lines):
        lines = iter(lines)
        outputs = []

        def fake_input(prompt):
            try:
                return next(lines)
            except StopIteration:
                raise EOFError

        repl(input_fn=fake_input, print_fn=outputs.append)
        return outputs

    def _errors(self, outputs):
        return [line for line in outputs if line.startswith("error:")]

    def test_malformed_input_is_reported_and_survived(self):
        outputs = self._run(["(+ 1", "(+ 1 2)", ":q"])
        assert len(self._errors(outputs)) == 1
        assert "3" in outputs

    def test_ill_typed_program_renders_the_error_box(self):
        outputs = self._run(["(: f : Int -> Bool) (define (f x) x)", ":q"])
        errors = self._errors(outputs)
        assert len(errors) == 1
        assert "Type Checker error in" in errors[0]

    def test_unbound_identifier_in_repl(self):
        outputs = self._run(["nope", ":q"])
        errors = self._errors(outputs)
        assert len(errors) == 1
        assert "unbound identifier 'nope'" in errors[0]

    def test_runtime_error_is_reported_not_fatal(self):
        # vec-ref is the *checked* accessor: statically fine, fails at
        # runtime — the REPL must render it and keep accepting input
        outputs = self._run(["(vec-ref (vector 1) 5)", "(+ 2 2)", ":q"])
        assert len(self._errors(outputs)) == 1
        assert "4" in outputs

    def test_rejected_input_leaves_scope_usable(self):
        outputs = self._run(
            [
                "(define (dbl x) (* 2 x))",
                "(dbl #t)",
                "(dbl 21)",
                ":q",
            ]
        )
        assert len(self._errors(outputs)) == 1
        assert "42" in outputs
