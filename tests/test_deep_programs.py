"""Deep-program regression tests: program depth must never exhaust the
Python stack.

The pre-kernel engine recursed per nesting level in four places —
macro expansion, let parsing, let synthesis and proposition
assimilation — so a ~500-level ``let``/``if`` tower died with
``RecursionError`` at the default interpreter limit.  The layered
kernel (worklist saturation, iterative and/or proving) plus the
spine-looping front end check these programs in O(1) stack.

These tests run at whatever recursion limit the host interpreter has —
they must pass *without* raising it.
"""

import sys

import pytest

from repro.checker.check import Checker, check_program_text
from repro.checker.errors import CheckError
from repro.logic.env import Env
from repro.logic.prove import Logic
from repro.syntax.parser import parse_program

DEPTH = 500


def deep_if_let(depth: int) -> str:
    """``(let ([x0 0]) (let ([x1 (if (int? x0) (+ x0 1) 0)]) ...))``.

    Every level contributes a binding, an occurrence-typing ``if`` on
    the previous binding, an alias and a disjunction — the full T-Let /
    T-If assimilation pipeline, ``depth`` levels deep.
    """
    lines = []
    prev = None
    for index in range(depth):
        rhs = "0" if prev is None else f"(if (int? {prev}) (+ {prev} 1) 0)"
        lines.append(f"(let ([x{index} {rhs}])")
        prev = f"x{index}"
    return "\n".join(lines) + f"\n{prev}" + ")" * depth


def deep_body(depth: int) -> str:
    """A single function whose body is a ``depth``-form sequence
    (lowers to a let1 spine through ``expand_body``)."""
    steps = "\n  ".join(f"(+ {index} 1)" for index in range(depth))
    return f"(: f : Int -> Int)\n(define (f n)\n  {steps}\n  n)"


class TestDeepNesting:
    def test_500_level_if_let_tower_checks(self):
        # Guard: the point is surviving at the *default* limit.  If a
        # test runner raised it, lower it back for this test.
        limit = sys.getrecursionlimit()
        sys.setrecursionlimit(1000)
        try:
            types = check_program_text(deep_if_let(DEPTH))
        finally:
            sys.setrecursionlimit(limit)
        assert types == {}  # a bare expression: no definitions

    def test_deep_tower_types_precisely(self):
        # The tower's last binding is provably an Int: every level's
        # occurrence test refines the previous binding.
        source = deep_if_let(50)
        program = parse_program(source)
        checker = Checker(logic=Logic())
        checker.check_program(program)  # must not raise

    @pytest.mark.slow
    def test_500_form_body_checks(self):
        limit = sys.getrecursionlimit()
        sys.setrecursionlimit(1000)
        try:
            types = check_program_text(deep_body(DEPTH))
        finally:
            sys.setrecursionlimit(limit)
        assert "f" in types

    def test_deep_program_is_rejected_precisely(self):
        # Depth must not cost precision: an ill-typed leaf at the
        # bottom of a deep tower is still caught.
        source = deep_if_let(200)
        bad = source.replace("\nx199", '\n(+ x199 "oops")')
        with pytest.raises(CheckError):
            check_program_text(bad)

    def test_deep_goal_with_persistent_cache_attached(self, tmp_path):
        # The cache keys goals by content digest (built from reprs);
        # digesting a deep goal must not recurse either.
        from repro.batch import ProofCache, logic_config_key
        from repro.tr.objects import Var
        from repro.tr.props import And, IsType, Or
        from repro.tr.types import INT

        logic = Logic()
        cache = ProofCache(str(tmp_path), logic_config_key(logic))
        logic.attach_persistent_cache(cache)
        x = Var("x")
        env = logic.extend(Env(), IsType(x, INT))
        atom = IsType(x, INT)
        goal = atom
        for _ in range(1500):
            goal = And((atom, Or((goal, atom))))
        limit = sys.getrecursionlimit()
        sys.setrecursionlimit(1000)
        try:
            assert logic.proves(env, goal)
        finally:
            sys.setrecursionlimit(limit)
        assert cache.delta()  # the verdict was recorded under its digest

    def test_shared_subtrees_prime_in_linear_time(self):
        # A tower of PairObj(t, t) has 2^n paths but n nodes; priming
        # (and therefore proving) must be O(nodes).
        from repro.tr.objects import PairObj, Var
        from repro.tr.props import IsType
        from repro.tr.types import TOP

        tower = Var("x")
        for _ in range(200):
            tower = PairObj(tower, tower)
        logic = Logic()
        assert logic.proves(Env(), IsType(tower, TOP))

    def test_deep_conjunction_goal_is_walked_not_abandoned(self):
        # A goal whose and/or structure is far deeper than the old
        # per-prop fuel (max_depth=64) could explore, and far deeper
        # than the Python stack allows recursively: the kernel's
        # frame machine walks it and proves every atom.
        from repro.tr.objects import Var
        from repro.tr.props import And, IsType, Or
        from repro.tr.types import INT

        logic = Logic()
        x = Var("x")
        env = logic.extend(Env(), IsType(x, INT))
        atom = IsType(x, INT)
        goal = atom
        for _ in range(1500):
            goal = And((atom, Or((goal, atom))))
        limit = sys.getrecursionlimit()
        sys.setrecursionlimit(1000)
        try:
            assert logic.proves(env, goal)
        finally:
            sys.setrecursionlimit(limit)
