"""Client-side resilience tests (repro/server/client.py).

Retries with backoff on retryable errors, reconnect on a broken pipe,
no socket leak when the initial dial fails, and idempotent ``close()``.
The daemon side is played by a tiny scripted stub server so each test
controls exactly what the wire does.
"""

import json
import socket
import threading

import pytest

from repro.server.client import Client, ServerError
from repro.server.protocol import ProtocolError


class StubServer:
    """Answers each connection from a script of per-request actions.

    Actions: ``"ok"`` (success response), ``("error", code, retryable)``,
    ``"drop"`` (close the connection without answering).  One action is
    consumed per request, across connections.
    """

    def __init__(self, tmp_path, script):
        self.socket_path = str(tmp_path / "stub.sock")
        self.script = list(script)
        self.requests = []
        self._listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._listener.bind(self.socket_path)
        self._listener.listen(8)
        self._listener.settimeout(10.0)
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        while not self._stop.is_set():
            try:
                conn, _ = self._listener.accept()
            except (socket.timeout, OSError):
                return
            # the makefile reader holds an fd reference: close it too,
            # or a "drop" never actually reaches the peer as EOF
            with conn, conn.makefile("rb") as reader:
                while True:
                    line = reader.readline()
                    if not line:
                        break
                    request = json.loads(line)
                    self.requests.append(request)
                    action = self.script.pop(0) if self.script else "ok"
                    if action == "drop":
                        break  # close mid-conversation
                    if action == "ok":
                        response = {"ok": True, "id": request.get("id")}
                    else:
                        _, code, retryable = action
                        response = {
                            "ok": False,
                            "code": code,
                            "error": f"scripted {code}",
                            "retryable": retryable,
                            "id": request.get("id"),
                        }
                    conn.sendall((json.dumps(response) + "\n").encode())

    def stop(self):
        self._stop.set()
        self._listener.close()
        self._thread.join(timeout=5.0)


class TestRetries:
    def test_retryable_error_is_reissued(self, tmp_path):
        stub = StubServer(tmp_path, [("error", "overloaded", True), "ok"])
        try:
            with Client(socket_path=stub.socket_path, retries=2,
                        backoff=0.01) as client:
                assert client.request("stats")["ok"]
                assert client.retries_total == 1
            assert len(stub.requests) == 2
        finally:
            stub.stop()

    def test_default_client_fails_fast(self, tmp_path):
        stub = StubServer(tmp_path, [("error", "overloaded", True), "ok"])
        try:
            with Client(socket_path=stub.socket_path) as client:
                with pytest.raises(ServerError) as info:
                    client.request("stats")
                assert info.value.code == "overloaded"
                assert info.value.retryable is True
            assert len(stub.requests) == 1
        finally:
            stub.stop()

    def test_non_retryable_error_never_retried(self, tmp_path):
        stub = StubServer(tmp_path, [("error", "check-error", False), "ok"])
        try:
            with Client(socket_path=stub.socket_path, retries=5,
                        backoff=0.01) as client:
                with pytest.raises(ServerError) as info:
                    client.request("stats")
                assert info.value.code == "check-error"
            assert len(stub.requests) == 1
        finally:
            stub.stop()

    def test_retries_exhausted_raises_last_error(self, tmp_path):
        stub = StubServer(tmp_path, [("error", "overloaded", True)] * 3)
        try:
            with Client(socket_path=stub.socket_path, retries=2,
                        backoff=0.01) as client:
                with pytest.raises(ServerError) as info:
                    client.request("stats")
                assert info.value.code == "overloaded"
            assert len(stub.requests) == 3  # 1 try + 2 retries
        finally:
            stub.stop()

    def test_jitter_is_deterministic_per_seed(self, monkeypatch):
        import random

        from repro.server import client as client_mod

        sleeps = []
        monkeypatch.setattr(client_mod.time, "sleep", sleeps.append)
        client = Client.__new__(Client)  # no dial: only test the schedule
        client.backoff, client.max_backoff = 0.1, 2.0
        client._rng = random.Random(42)
        for attempt in range(3):
            client._sleep_before_retry(attempt)
        reference = random.Random(42)
        expected = [
            min(2.0, 0.1 * (2 ** a)) * (0.5 + 0.5 * reference.random())
            for a in range(3)
        ]
        assert sleeps == expected


class TestReconnect:
    def test_broken_pipe_reconnects_and_retries(self, tmp_path):
        stub = StubServer(tmp_path, ["drop", "ok"])
        try:
            with Client(socket_path=stub.socket_path, retries=2,
                        backoff=0.01) as client:
                assert client.request("stats")["ok"]
                assert client.reconnects_total == 1
        finally:
            stub.stop()

    def test_broken_pipe_without_retries_raises(self, tmp_path):
        stub = StubServer(tmp_path, ["drop"])
        try:
            with Client(socket_path=stub.socket_path) as client:
                with pytest.raises((ProtocolError, OSError)):
                    client.request("stats")
        finally:
            stub.stop()


class TestSocketHygiene:
    def test_failed_dial_does_not_leak_socket(self, tmp_path, monkeypatch):
        created = []
        real_socket = socket.socket

        class Recorder(socket.socket):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                created.append(self)

        monkeypatch.setattr(socket, "socket", Recorder)
        with pytest.raises(OSError):
            Client(socket_path=str(tmp_path / "nowhere.sock"))
        assert created, "the client never opened a socket"
        assert all(sock.fileno() == -1 for sock in created), (
            "a socket outlived the failed dial"
        )
        monkeypatch.setattr(socket, "socket", real_socket)

    def test_close_is_idempotent(self, tmp_path):
        stub = StubServer(tmp_path, ["ok"])
        try:
            client = Client(socket_path=stub.socket_path)
            client.close()
            client.close()  # no raise
            with client:  # context manager re-entry is also safe
                pass
        finally:
            stub.stop()

    def test_close_then_request_reconnects(self, tmp_path):
        stub = StubServer(tmp_path, ["ok", "ok"])
        try:
            with Client(socket_path=stub.socket_path, retries=1,
                        backoff=0.01) as client:
                assert client.request("stats")["ok"]
                client.close()
                assert client.request("stats")["ok"]
                assert client.reconnects_total == 1
        finally:
            stub.stop()

    def test_constructor_validates_addressing(self):
        with pytest.raises(ValueError):
            Client()
        with pytest.raises(ValueError):
            Client(socket_path="/tmp/x.sock", port=4000)
