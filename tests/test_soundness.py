"""Empirical type soundness (Theorem 1 and Lemma 2).

Two attacks:

1. **Random closed programs.**  Hypothesis generates expressions from a
   small grammar; whenever the checker accepts one, we evaluate it and
   assert (a) the value inhabits the assigned type, and (b) the
   matching then/else proposition is satisfied by the empty model —
   exactly Lemma 2's clauses 2 and 3 for closed terms.

2. **Random inputs to verified functions.**  The paper's safe vector
   functions are run on random vectors/indices; the static guarantee
   says ``UnsafeMemoryError`` can never escape.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.checker.check import Checker, check_program_text
from repro.checker.errors import CheckError
from repro.interp.eval import run_program_text
from repro.interp.values import RacketError, UnsafeMemoryError
from repro.logic.env import Env
from repro.model.satisfies import satisfies, value_has_type
from repro.syntax.parser import ParseError, parse_program


# ----------------------------------------------------------------------
# 1. random closed expressions
# ----------------------------------------------------------------------
_int_atom = st.integers(-20, 20).map(str)
_bool_atom = st.sampled_from(["#t", "#f"])


def _binop(op, a, b):
    return f"({op} {a} {b})"


_int_expr = st.deferred(
    lambda: st.one_of(
        _int_atom,
        st.builds(_binop, st.sampled_from(["+", "-", "*", "min", "max"]),
                  _int_expr, _int_expr),
        st.builds(lambda a: f"(abs {a})", _int_expr),
        st.builds(lambda a: f"(add1 {a})", _int_expr),
        st.builds(
            lambda t, a, b: f"(if {t} {a} {b})", _bool_expr, _int_expr, _int_expr
        ),
        st.builds(
            lambda a, b: f"(let ([tmp%h {a}]) (+ tmp%h {b}))", _int_expr, _int_expr
        ),
    )
)

_bool_expr = st.deferred(
    lambda: st.one_of(
        _bool_atom,
        st.builds(_binop, st.sampled_from(["<", "<=", "=", ">", ">="]),
                  _int_expr, _int_expr),
        st.builds(lambda a: f"(not {a})", _bool_expr),
        st.builds(lambda a, b: f"(and {a} {b})", _bool_expr, _bool_expr),
        st.builds(lambda a, b: f"(or {a} {b})", _bool_expr, _bool_expr),
        st.builds(lambda a: f"(int? {a})", _int_expr),
        st.builds(lambda a: f"(zero? {a})", _int_expr),
    )
)

_mixed_expr = st.one_of(
    _int_expr,
    _bool_expr,
    st.builds(lambda a, b: f"(cons {a} {b})", _int_expr, _bool_expr),
    st.builds(lambda a, b: f"(fst (cons {a} {b}))", _int_expr, _bool_expr),
    st.builds(lambda a, b: f"(snd (cons {a} {b}))", _bool_expr, _int_expr),
)


@pytest.mark.slow
@settings(max_examples=250, deadline=None)
@given(_mixed_expr)
def test_well_typed_closed_expressions_evaluate_to_their_type(src):
    """Theorem 1 on random closed programs."""
    try:
        program = parse_program(src)
    except ParseError:
        return
    checker = Checker()
    try:
        result = checker.synth(Env(), program.body[0])
    except CheckError:
        return  # only well-typed programs are in scope of the theorem
    _defs, values = run_program_text(src)
    value = values[0]
    # Lemma 2(3): the value inhabits the type.
    from repro.tr.subst import close_result

    closed = close_result(result)
    assert value_has_type(value, closed.type, {})
    # Lemma 2(2): the matching proposition is satisfied.
    if value is not False:
        assert satisfies({}, closed.then_prop)
    else:
        assert satisfies({}, closed.else_prop)


@pytest.mark.slow
@settings(max_examples=250, deadline=None)
@given(_mixed_expr)
def test_evaluation_never_raises_python_errors(src):
    """Even ill-typed generated programs only fail with Racket errors."""
    try:
        run_program_text(src)
    except RacketError:
        pass  # checked errors are fine


# ----------------------------------------------------------------------
# 2. verified functions on random inputs
# ----------------------------------------------------------------------
GUARDED_GET = """
(: get : [v : (Vecof Int)] [i : Int] -> Int)
(define (get v i)
  (if (and (<= 0 i) (< i (len v)))
      (safe-vec-ref v i)
      -1))
"""

VSUM = """
(: vsum : (Vecof Int) -> Int)
(define (vsum A)
  (for/sum ([i (in-range (len A))])
    (safe-vec-ref A i)))
"""

DOT = """
(: safe-dot-prod : [A : (Vecof Int)]
                   [B : (Vecof Int) #:where (= (len B) (len A))] -> Int)
(define (safe-dot-prod A B)
  (for/sum ([i (in-range (len A))])
    (* (safe-vec-ref A i) (safe-vec-ref B i))))
(: dot-prod : (Vecof Int) (Vecof Int) -> Int)
(define (dot-prod A B)
  (unless (= (len A) (len B))
    (error "invalid vector lengths!"))
  (safe-dot-prod A B))
"""

SWAP = """
(: vec-swap! : (Vecof Int) Int Int -> Void)
(define (vec-swap! vs i j)
  (unless (= i j)
    (cond
      [(and (< -1 i (len vs))
            (< -1 j (len vs)))
       (let ([i-val (safe-vec-ref vs i)])
         (let ([j-val (safe-vec-ref vs j)])
           (safe-vec-set! vs i j-val)
           (safe-vec-set! vs j i-val)))]
      [else (error "bad index(s)!")])))
"""


def _vector_literal(values):
    return "(vector " + " ".join(str(v) for v in values) + ")"


@pytest.fixture(scope="module", autouse=True)
def _programs_check():
    for src in (GUARDED_GET, VSUM, DOT, SWAP):
        check_program_text(src)


@settings(max_examples=80, deadline=None)
@given(st.lists(st.integers(-99, 99), max_size=6), st.integers(-10, 10))
def test_guarded_get_never_unsafe(values, index):
    src = GUARDED_GET + f"\n(get {_vector_literal(values)} {index})"
    _defs, results = run_program_text(src)
    expected = values[index] if 0 <= index < len(values) else -1
    assert results[0] == expected


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(-99, 99), max_size=8))
def test_vsum_never_unsafe(values):
    src = VSUM + f"\n(vsum {_vector_literal(values)})"
    _defs, results = run_program_text(src)
    assert results[0] == sum(values)


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.integers(-9, 9), max_size=5),
    st.lists(st.integers(-9, 9), max_size=5),
)
def test_dot_prod_never_unsafe(a, b):
    src = DOT + f"\n(dot-prod {_vector_literal(a)} {_vector_literal(b)})"
    try:
        _defs, results = run_program_text(src)
    except RacketError:
        assert len(a) != len(b)  # only the checked length error may fire
        return
    assert results[0] == sum(x * y for x, y in zip(a, b))


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.integers(-9, 9), min_size=1, max_size=5),
    st.integers(-6, 6),
    st.integers(-6, 6),
)
def test_swap_never_unsafe(values, i, j):
    src = SWAP + f"\n(vec-swap! {_vector_literal(values)} {i} {j})"
    try:
        run_program_text(src)
    except RacketError:
        in_range = 0 <= i < len(values) and 0 <= j < len(values)
        assert not in_range or i == j  # only the guard's error may fire
        # (i == j short-circuits before the guard, so only !in_range)
        assert not in_range


def test_ill_typed_unsafe_program_would_crash():
    """Negative control: the checker rejects exactly the program whose
    execution goes memory-unsafe — the properties above are not vacuous."""
    with pytest.raises(CheckError):
        check_program_text("(safe-vec-ref (vector 1 2) 5)")
    # unsafe-vec-ref's type promises nothing; running it crashes:
    with pytest.raises(UnsafeMemoryError):
        run_program_text("(unsafe-vec-ref (vector 1 2) 5)")
