"""Additional expander coverage: bodies, internal defines, nesting."""

import pytest

from repro.interp.eval import run_program_text
from repro.checker.check import check_program_text
from repro.sexp.printer import write_sexp
from repro.sexp.reader import read
from repro.syntax.macros import MacroError, expand


def run(src):
    _defs, results = run_program_text(src)
    return results[-1] if results else None


class TestInternalDefines:
    def test_define_in_function_body(self):
        assert run(
            """
            (define (f x)
              (define y (* 2 x))
              (define z (+ y 1))
              (+ y z))
            (f 3)
            """
        ) == 6 + 7

    def test_internal_function_define(self):
        assert run(
            """
            (define (f x)
              (define (g y) (+ y 1))
              (g (g x)))
            (f 0)
            """
        ) == 2

    def test_define_in_cond_branch(self):
        # the paper's expansion shows (define i pos) inside a cond arm
        assert run(
            """
            (define (f x)
              (cond
                [(< x 0) (define y (- 0 x)) y]
                [else (define y x) (+ y 1)]))
            (f -5)
            (f 5)
            """
        ) == 6

    def test_checked_internal_defines(self):
        check_program_text(
            """
            (: f : Int -> Int)
            (define (f x)
              (define doubled (* 2 x))
              (+ doubled 1))
            """
        )


class TestNestedLoops:
    def test_nested_for_sums(self):
        assert run(
            """
            (for/sum ([i (in-range 3)])
              (for/sum ([j (in-range 3)])
                (* i j)))
            """
        ) == sum(i * j for i in range(3) for j in range(3))

    def test_nested_loops_check_with_safe_access(self):
        check_program_text(
            """
            (: total : (Vecof (Vecof Int)) -> Int)
            (define (total dss)
              (for/sum ([i (in-range (len dss))])
                (let ([row (safe-vec-ref dss i)])
                  (for/sum ([j (in-range (len row))])
                    (safe-vec-ref row j)))))
            """
        )

    def test_nested_loops_run(self):
        assert run(
            """
            (define (total dss)
              (for/sum ([i (in-range (len dss))])
                (let ([row (vec-ref dss i)])
                  (for/sum ([j (in-range (len row))])
                    (vec-ref row j)))))
            (total (vector (vector 1 2) (vector 3 4)))
            """
        ) == 10


class TestExpansionHygiene:
    def test_gensyms_do_not_collide_across_expansions(self):
        first = write_sexp(expand(read("(for/sum ([i (in-range 3)]) i)")))
        second = write_sexp(expand(read("(for/sum ([i (in-range 3)]) i)")))
        loops_a = {tok for tok in first.replace("(", " ").split() if tok.startswith("loop%")}
        loops_b = {tok for tok in second.replace("(", " ").split() if tok.startswith("loop%")}
        assert loops_a.isdisjoint(loops_b)

    def test_user_variables_near_gensym_shapes_ok(self):
        # a user variable named like a loop counter doesn't confuse things
        assert run("(let ([pos 5]) (for/sum ([i (in-range pos)]) i))") == 10

    def test_or_temp_does_not_capture(self):
        assert run("(let ([x 1]) (or #f x))") == 1


class TestMalformedInputs:
    @pytest.mark.parametrize(
        "text",
        [
            "(let)",
            "(let loop)",
            "(cond [else 1] [(a) 2])",
            "(for/sum ([i (in-range 1)] [j (in-range 2)]) i)",
            "(vec-match v [(a) 1])",
        ],
    )
    def test_rejected(self, text):
        with pytest.raises(MacroError):
            expand(read(text))
