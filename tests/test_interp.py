"""Tests for the big-step interpreter (Figure 8)."""

import pytest

from repro.interp.eval import evaluate, run_program_text
from repro.interp.values import (
    Closure,
    PairV,
    RacketError,
    UnsafeMemoryError,
    VOID_VALUE,
)
from repro.syntax.parser import parse_expr_text


def run(src):
    _defs, results = run_program_text(src)
    return results[-1] if results else None


class TestBasics:
    def test_literal(self):
        assert run("42") == 42

    def test_arithmetic(self):
        assert run("(+ 1 (* 2 3))") == 7

    def test_if_truthiness(self):
        # every non-#f value is true (B-IfTrue)
        assert run("(if 0 1 2)") == 1
        assert run('(if "" 1 2)') == 1
        assert run("(if #f 1 2)") == 2

    def test_let(self):
        assert run("(let ([x 3]) (+ x x))") == 6

    def test_lambda_application(self):
        assert run("((λ (x y) (+ x y)) 3 4)") == 7

    def test_closure_captures(self):
        assert run("(let ([k 10]) ((λ (x) (+ x k)) 1))") == 11

    def test_pairs(self):
        assert run("(fst (cons 1 2))") == 1
        assert run("(snd (cons 1 2))") == 2
        assert run("(cons 1 2)") == PairV(1, 2)

    def test_vectors(self):
        assert run("(vec-ref (vector 10 20 30) 1)") == 20
        assert run("(len (vector 1 2))") == 2

    def test_vector_mutation(self):
        assert run("(let ([v (vector 1 2)]) (begin (vec-set! v 0 9) (vec-ref v 0)))") == 9

    def test_void(self):
        assert run("(void)") is VOID_VALUE


class TestControl:
    def test_cond(self):
        assert run("(cond [(< 2 1) 0] [(< 1 2) 1] [else 2])") == 1

    def test_and_or_shortcircuit(self):
        assert run("(and #f (error \"never\"))") is False
        assert run("(or 5 (error \"never\"))") == 5

    def test_when_unless(self):
        assert run("(when #t 5)") == 5
        assert run("(unless #t 5)") is VOID_VALUE

    def test_named_let_loop(self):
        assert run(
            "(let loop ([i 0] [acc 0]) (if (< i 5) (loop (+ i 1) (+ acc i)) acc))"
        ) == 10

    def test_for_sum(self):
        assert run("(for/sum ([i (in-range 5)]) i)") == 10

    def test_for_sum_with_start(self):
        assert run("(for/sum ([i (in-range 2 5)]) i)") == 9

    def test_reverse_for_sum(self):
        assert run("(for/sum ([i (in-range 4 -1 -1)]) i)") == 10

    def test_for_fold(self):
        assert run("(for/fold ([m 0]) ([i (in-range 5)]) (max m i))") == 4

    def test_vec_match(self):
        assert run("(vec-match (vector 1 2 3) [(a b c) (+ a (+ b c))] [else 0])") == 6

    def test_vec_match_wrong_arity_takes_else(self):
        assert run("(vec-match (vector 1 2) [(a b c) 1] [else 99])") == 99


class TestMutation:
    def test_set_bang(self):
        assert run("(let ([x 1]) (begin (set! x 5) x))") == 5

    def test_set_through_closure(self):
        assert run(
            """
            (let ([counter 0])
              (let ([bump (λ () (set! counter (+ counter 1)))])
                (begin (bump) (bump) counter)))
            """
        ) == 2


class TestPrograms:
    def test_defines_and_body(self):
        defs, results = run_program_text("(define (dbl x) (* 2 x)) (dbl 21)")
        assert results == (42,)
        assert isinstance(defs["dbl"], Closure)

    def test_mutual_recursion(self):
        _defs, results = run_program_text(
            """
            (define (even-ish n) (if (= n 0) #t (odd-ish (- n 1))))
            (define (odd-ish n) (if (= n 0) #f (even-ish (- n 1))))
            (even-ish 10)
            (odd-ish 10)
            """
        )
        assert results == (True, False)

    def test_letrec_loop(self):
        assert run(
            """
            (letrec ([fact (λ (n) (if (= n 0) 1 (* n (fact (- n 1)))))])
              (fact 6))
            """
        ) == 720

    def test_dot_product(self):
        assert run(
            """
            (define (dot A B)
              (for/sum ([i (in-range (len A))])
                (* (vec-ref A i) (vec-ref B i))))
            (dot (vector 1 2 3) (vector 4 5 6))
            """
        ) == 32

    def test_xtime_semantics(self):
        # xtime(0x57) = 0xae;  xtime(0xae) = 0x47 (AES test vectors)
        src = """
        (define (xtime num)
          (let ([n (AND (* 2 num) 255)])
            (cond
              [(= 0 (AND num 128)) n]
              [else (XOR n 27)])))
        (xtime 87)
        (xtime 174)
        """
        _defs, results = run_program_text(src)
        assert results == (0xAE, 0x47)


class TestErrors:
    def test_error_prim(self):
        with pytest.raises(RacketError):
            run('(error "boom")')

    def test_checked_vec_ref(self):
        with pytest.raises(RacketError):
            run("(vec-ref (vector 1) 5)")

    def test_unsafe_vec_ref_is_memory_error(self):
        with pytest.raises(UnsafeMemoryError):
            run("(unsafe-vec-ref (vector 1) 5)")

    def test_fst_of_non_pair(self):
        with pytest.raises(RacketError):
            run("(fst 5)")

    def test_apply_non_procedure(self):
        with pytest.raises(RacketError):
            run("(let ([f 5]) (f 1))")

    def test_arity_error(self):
        with pytest.raises(RacketError):
            run("((λ (x) x) 1 2)")

    def test_deep_loop_does_not_hit_recursion_limit(self):
        assert run("(for/sum ([i (in-range 2000)]) 1)") == 2000
