"""Every example program from the paper, checked and (where closed) run.

Section-by-section coverage:
  §1  Figure 1 — max with refinement types
  §2  least-significant-bit (occurrence typing)
  §2.1 vec-ref / safe-vec-ref / safe-dot-prod / dot-prod
  §2.2 xtime (bitvector theory)
  §4.2 cache-size mutation unsoundness
  §4.4 for/sum expansion and the reverse-iteration heuristic failure
  §5.1 Nat-annotated loop, vec-swap!, beyond-scope dims
"""

import pytest

from repro.checker.check import check_program_text
from repro.checker.errors import CheckError, UnsupportedFeature
from repro.interp.eval import run_program_text


def checks(src):
    check_program_text(src)
    return True


def fails(src):
    with pytest.raises(CheckError):
        check_program_text(src)
    return True


class TestFigure1Max:
    SRC = """
    (: max : [x : Int] [y : Int]
       -> [z : Int #:where (and (>= z x) (>= z y))])
    (define (max x y) (if (> x y) x y))
    """

    def test_checks(self):
        assert checks(self.SRC)

    def test_runs(self):
        _d, results = run_program_text(self.SRC + "(max 3 7) (max -2 -9)")
        assert results == (7, -2)


class TestSection2Occurrence:
    # adapted: (Listof Bit) becomes (Vecof Int) — lists are not in the model
    SRC = """
    (: least-significant-bit : (U Int (Vecof Int)) -> Int)
    (define (least-significant-bit n)
      (if (int? n)
          (if (even? n) 0 1)
          (if (< 0 (len n)) (vec-ref n (- (len n) 1)) 0)))
    """

    def test_checks(self):
        assert checks(self.SRC)

    def test_runs_on_both_branches(self):
        _d, results = run_program_text(
            self.SRC
            + "(least-significant-bit 6) (least-significant-bit (vector 1 0 1))"
        )
        assert results == (0, 1)


class TestSection21Vectors:
    def test_vec_ref_with_runtime_check(self):
        assert checks(
            """
            (: my-vec-ref : [v : (Vecof Int)] [i : Int] -> Int)
            (define (my-vec-ref v i)
              (if (<= 0 i (- (len v) 1))
                  (unsafe-vec-ref v i)
                  (error "invalid vector index!")))
            """
        )

    def test_safe_vec_ref_definition(self):
        # (define safe-vec-ref unsafe-vec-ref) at the refined type
        assert checks(
            """
            (: my-safe-vec-ref :
               [v : (Vecof Int)]
               [i : Int #:where (and (<= 0 i) (< i (len v)))] -> Int)
            (define (my-safe-vec-ref v i) (unsafe-vec-ref v i))
            """
        )

    def test_safe_dot_prod_requires_length_knowledge(self):
        assert fails(
            """
            (: safe-dot-prod : (Vecof Int) (Vecof Int) -> Int)
            (define (safe-dot-prod A B)
              (for/sum ([i (in-range (len A))])
                (* (safe-vec-ref A i) (safe-vec-ref B i))))
            """
        )

    DOT = """
    (: safe-dot-prod : [A : (Vecof Int)]
                       [B : (Vecof Int) #:where (= (len B) (len A))] -> Int)
    (define (safe-dot-prod A B)
      (for/sum ([i (in-range (len A))])
        (* (safe-vec-ref A i) (safe-vec-ref B i))))
    (: dot-prod : (Vecof Int) (Vecof Int) -> Int)
    (define (dot-prod A B)
      (unless (= (len A) (len B))
        (error "invalid vector lengths!"))
      (safe-dot-prod A B))
    """

    def test_middle_ground_checks(self):
        assert checks(self.DOT)

    def test_middle_ground_runs(self):
        _d, results = run_program_text(
            self.DOT + "(dot-prod (vector 1 2 3) (vector 4 5 6))"
        )
        assert results == (32,)

    def test_middle_ground_guards_at_runtime(self):
        from repro.interp.values import RacketError

        with pytest.raises(RacketError):
            run_program_text(self.DOT + "(dot-prod (vector 1) (vector 1 2))")


class TestSection22Xtime:
    SRC = """
    (: xtime : Byte -> Byte)
    (define (xtime num)
      (let ([n (AND (* 2 num) 255)])
        (cond
          [(= 0 (AND num 128)) n]
          [else (XOR n 27)])))
    """

    def test_checks(self):
        assert checks(self.SRC)

    def test_aes_test_vectors(self):
        _d, results = run_program_text(
            self.SRC + "(xtime 87) (xtime 174) (xtime 71) (xtime 142)"
        )
        # FIPS-197 example chain: 57 → ae → 47 → 8e → 07 (hex)
        assert results == (0xAE, 0x47, 0x8E, 0x07)


class TestSection42Mutation:
    def test_cache_size_exploit_rejected(self):
        assert fails(
            """
            (define cache-size 10)
            (: lookup : (Vecof Int) Int -> Int)
            (define (lookup v n)
              (set! cache-size 5)
              (if (and (<= 0 n) (< n cache-size) (= cache-size (len v)))
                  (safe-vec-ref v n)
                  0))
            """
        )


class TestSection44Loops:
    def test_forward_for_sum_verifies(self):
        assert checks(
            """
            (: vsum : (Vecof Int) -> Int)
            (define (vsum A)
              (for/sum ([i (in-range (len A))]) (safe-vec-ref A i)))
            """
        )

    def test_reverse_iteration_heuristic_fails(self):
        assert fails(
            """
            (: rsum : (Vecof Int) -> Int)
            (define (rsum A)
              (for/sum ([i (in-range (- (len A) 1) -1 -1)])
                (safe-vec-ref A i)))
            """
        )


class TestSection51Categories:
    def test_nat_annotation_too_weak(self):
        assert fails(
            """
            (: prod : (Vecof Int) -> Int)
            (define (prod ds)
              (let loop ([i : Nat (len ds)] [res : Int 1])
                (cond
                  [(zero? i) res]
                  [else (loop (- i 1) (* res (safe-vec-ref ds (- i 1))))])))
            """
        )

    def test_refined_annotation_verifies(self):
        assert checks(
            """
            (: prod : (Vecof Int) -> Int)
            (define (prod ds)
              (let loop ([i : (Refine [i : Nat] (<= i (len ds))) (len ds)]
                         [res : Int 1])
                (cond
                  [(zero? i) res]
                  [else (loop (- i 1) (* res (safe-vec-ref ds (- i 1))))])))
            """
        )

    SWAP = """
    (: vec-swap! : (Vecof Int) Int Int -> Void)
    (define (vec-swap! vs i j)
      (unless (= i j)
        (cond
          [(and (< -1 i (len vs))
                (< -1 j (len vs)))
           (let ([i-val (safe-vec-ref vs i)])
             (let ([j-val (safe-vec-ref vs j)])
               (safe-vec-set! vs i j-val)
               (safe-vec-set! vs j i-val)))]
          [else (error "bad index(s)!")])))
    """

    def test_vec_swap_with_added_checks(self):
        assert checks(self.SWAP)

    def test_vec_swap_runs(self):
        src = self.SWAP + """
        (define v (vector 1 2 3))
        (vec-swap! v 0 2)
        (vec-ref v 0)
        (vec-ref v 2)
        """
        _d, results = run_program_text(src)
        assert results[-2:] == (3, 1)

    def test_beyond_scope_dims(self):
        # "(define dims (apply max (map len dss)))" — the relationship
        # between dims and the vectors is beyond the linear theory.
        assert fails(
            """
            (: use-dims : [v : (Vecof Int)] [dims : Int] -> Int)
            (define (use-dims v dims)
              (if (< 0 dims) (safe-vec-ref v (- dims 1)) 0))
            """
        )

    def test_unimplemented_struct_fields(self):
        with pytest.raises(UnsupportedFeature):
            check_program_text(
                """
                (struct Cfg (size))
                (: f : (Vecof Int) Any -> Int)
                (define (f v c)
                  (let ([n (Cfg-size c)])
                    (if (and (int? n) (<= 0 n) (< n (len v)))
                        (safe-vec-ref v n)
                        0)))
                """
            )
