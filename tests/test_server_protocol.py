"""Unit tests for the NDJSON wire protocol (repro/server/protocol.py)."""

import socket
import threading

import pytest

from repro.server.protocol import (
    MAX_LINE_BYTES,
    MessageStream,
    ProtocolError,
    decode,
    encode,
    error_response,
    validate_request,
)


class TestFraming:
    def test_roundtrip(self):
        message = {"op": "eval", "expr": "(+ 1 2)", "id": 7}
        assert decode(encode(message).rstrip(b"\n")) == message

    def test_one_line_per_message(self):
        framed = encode({"op": "check_text", "name": "m", "text": "(define x 1)\n"})
        assert framed.count(b"\n") == 1
        assert framed.endswith(b"\n")

    def test_unicode_survives(self):
        message = {"op": "eval", "expr": "(λ ⊢ ψ)"}
        assert decode(encode(message).rstrip(b"\n")) == message

    def test_unencodable_payload_rejected(self):
        with pytest.raises(ProtocolError):
            encode({"op": object()})

    def test_malformed_json_rejected(self):
        with pytest.raises(ProtocolError, match="malformed"):
            decode(b"{not json")

    def test_non_object_rejected(self):
        with pytest.raises(ProtocolError, match="object"):
            decode(b"[1, 2, 3]")

    def test_oversized_line_rejected(self):
        with pytest.raises(ProtocolError, match="exceeds"):
            decode(b"x" * (MAX_LINE_BYTES + 1))


class TestValidation:
    def test_every_known_op_validates(self):
        for request in (
            {"op": "check", "paths": ["a.rkt"]},
            {"op": "check_text", "name": "m", "text": "(define x 1)"},
            {"op": "eval", "expr": "(+ 1 2)"},
            {"op": "stats"},
            {"op": "ping"},
            {"op": "reset"},
            {"op": "shutdown"},
        ):
            assert validate_request(request) == request

    def test_unknown_op_rejected(self):
        with pytest.raises(ProtocolError, match="unknown op"):
            validate_request({"op": "frobnicate"})

    def test_missing_op_rejected(self):
        with pytest.raises(ProtocolError, match="unknown op"):
            validate_request({"expr": "(+ 1 2)"})

    def test_missing_required_field(self):
        with pytest.raises(ProtocolError, match="requires field"):
            validate_request({"op": "eval"})

    def test_wrong_field_type(self):
        with pytest.raises(ProtocolError, match="must be str"):
            validate_request({"op": "eval", "expr": 42})

    def test_empty_paths_rejected(self):
        with pytest.raises(ProtocolError, match="non-empty"):
            validate_request({"op": "check", "paths": []})

    def test_non_string_paths_rejected(self):
        with pytest.raises(ProtocolError, match="strings"):
            validate_request({"op": "check", "paths": ["a.rkt", 3]})

    def test_error_response_echoes_id_and_op(self):
        response = error_response({"op": "eval", "id": 9}, "bad-request", "nope")
        assert response == {
            "ok": False,
            "code": "bad-request",
            "error": "nope",
            "id": 9,
            "op": "eval",
        }

    def test_error_response_marks_retryable(self):
        response = error_response(
            {"op": "eval", "id": 3}, "overloaded", "shed", retryable=True
        )
        assert response["retryable"] is True
        # non-retryable responses carry no retryable key at all
        plain = error_response({"op": "eval"}, "check-error", "no")
        assert "retryable" not in plain


class TestDeadlines:
    def test_deadline_accepted_on_engine_ops(self):
        for op, fields in (
            ("check", {"paths": ["a.rkt"]}),
            ("check_text", {"name": "m", "text": "(define x 1)"}),
            ("eval", {"expr": "(+ 1 2)"}),
            ("reset", {}),
        ):
            request = {"op": op, "deadline_ms": 250.0, **fields}
            assert validate_request(request) == request

    def test_deadline_rejected_on_instant_ops(self):
        for op in ("stats", "ping", "shutdown"):
            with pytest.raises(ProtocolError, match="deadline_ms"):
                validate_request({"op": op, "deadline_ms": 250.0})

    def test_non_positive_deadline_rejected(self):
        for bad in (0, -1, -0.5):
            with pytest.raises(ProtocolError, match="positive"):
                validate_request(
                    {"op": "eval", "expr": "1", "deadline_ms": bad}
                )

    def test_non_numeric_deadline_rejected(self):
        for bad in ("100", True, [100], None):
            with pytest.raises(ProtocolError):
                validate_request(
                    {"op": "eval", "expr": "1", "deadline_ms": bad}
                )


class TestMessageStream:
    def _pair(self):
        left, right = socket.socketpair()
        return MessageStream(left), MessageStream(right)

    def test_send_receive(self):
        a, b = self._pair()
        a.send({"op": "stats", "id": 1})
        assert b.receive() == {"op": "stats", "id": 1}
        a.close(), b.close()

    def test_many_messages_one_segment(self):
        a, b = self._pair()
        for index in range(5):
            a.send({"id": index})
        assert [b.receive()["id"] for _ in range(5)] == list(range(5))
        a.close(), b.close()

    def test_clean_close_yields_none(self):
        a, b = self._pair()
        a.close()
        assert b.receive() is None
        b.close()

    def test_partial_message_then_close_raises(self):
        left, right = socket.socketpair()
        stream = MessageStream(right)
        left.sendall(b'{"op": "stats"')  # no newline
        left.close()
        with pytest.raises(ProtocolError, match="mid-message"):
            stream.receive()
        stream.close()

    def test_fragmented_send_reassembles(self):
        left, right = socket.socketpair()
        stream = MessageStream(right)
        framed = encode({"op": "eval", "expr": "x" * 1000})

        def trickle():
            for offset in range(0, len(framed), 97):
                left.sendall(framed[offset : offset + 97])
            left.close()

        feeder = threading.Thread(target=trickle)
        feeder.start()
        assert stream.receive()["op"] == "eval"
        feeder.join()
        stream.close()
