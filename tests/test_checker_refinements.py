"""Refinement-type scenarios (sections 1, 2.1): linear arithmetic at work."""

import pytest

from repro.checker.check import check_program_text
from repro.checker.errors import CheckError


def checks(src):
    check_program_text(src)
    return True


def fails(src):
    with pytest.raises(CheckError):
        check_program_text(src)
    return True


class TestMaxFigure1:
    def test_max_checks(self):
        assert checks(
            """
            (: max : [x : Int] [y : Int]
               -> [z : Int #:where (and (>= z x) (>= z y))])
            (define (max x y) (if (> x y) x y))
            """
        )

    def test_max_wrong_body_rejected(self):
        assert fails(
            """
            (: max : [x : Int] [y : Int]
               -> [z : Int #:where (and (>= z x) (>= z y))])
            (define (max x y) (if (> x y) y x))
            """
        )

    def test_min_analogue(self):
        assert checks(
            """
            (: min : [x : Int] [y : Int]
               -> [z : Int #:where (and (<= z x) (<= z y))])
            (define (min x y) (if (< x y) x y))
            """
        )

    def test_clients_unchanged(self):
        # "nor do clients of max need to care"
        assert checks(
            """
            (: max : [x : Int] [y : Int]
               -> [z : Int #:where (and (>= z x) (>= z y))])
            (define (max x y) (if (> x y) x y))
            (: f : Int -> Int)
            (define (f a) (max a 0))
            """
        )

    def test_refinement_usable_at_call_site(self):
        assert checks(
            """
            (: max : [x : Int] [y : Int]
               -> [z : Int #:where (and (>= z x) (>= z y))])
            (define (max x y) (if (> x y) x y))
            (: g : Int -> Nat)
            (define (g a) (max a 0))
            """
        )


class TestSafeVectorAccess:
    def test_guarded_access(self):
        assert checks(
            """
            (: get : [v : (Vecof Int)] [i : Int] -> Int)
            (define (get v i)
              (if (and (<= 0 i) (< i (len v)))
                  (safe-vec-ref v i)
                  0))
            """
        )

    def test_unguarded_rejected(self):
        assert fails(
            """
            (: get : [v : (Vecof Int)] [i : Int] -> Int)
            (define (get v i) (safe-vec-ref v i))
            """
        )

    def test_lower_bound_alone_insufficient(self):
        assert fails(
            """
            (: get : [v : (Vecof Int)] [i : Nat] -> Int)
            (define (get v i) (safe-vec-ref v i))
            """
        )

    def test_refined_domain_sufficient(self):
        assert checks(
            """
            (: get : [v : (Vecof Int)]
                     [i : Int #:where (and (<= 0 i) (< i (len v)))] -> Int)
            (define (get v i) (safe-vec-ref v i))
            """
        )

    def test_vec_ref_wrapper_shape(self):
        # §2.1: the checked vec-ref implemented over the unsafe accessor
        assert checks(
            """
            (: my-vec-ref : [v : (Vecof Int)] [i : Int] -> Int)
            (define (my-vec-ref v i)
              (if (and (<= 0 i) (< i (len v)))
                  (unsafe-vec-ref v i)
                  (error "invalid vector index!")))
            """
        )

    def test_safe_write(self):
        assert checks(
            """
            (: put : [v : (Vecof Int)] [i : Int] -> Void)
            (define (put v i)
              (when (and (<= 0 i) (< i (len v)))
                (safe-vec-set! v i 7)))
            """
        )

    def test_off_by_one_rejected(self):
        assert fails(
            """
            (: get : [v : (Vecof Int)] [i : Int] -> Int)
            (define (get v i)
              (if (and (<= 0 i) (<= i (len v)))
                  (safe-vec-ref v i)
                  0))
            """
        )

    def test_arith_on_index(self):
        assert checks(
            """
            (: get : [v : (Vecof Int)] [i : Int] -> Int)
            (define (get v i)
              (if (and (<= 1 i) (<= i (len v)))
                  (safe-vec-ref v (- i 1))
                  0))
            """
        )


class TestDotProduct:
    def test_safe_dot_prod_with_where(self):
        assert checks(
            """
            (: safe-dot-prod : [A : (Vecof Int)]
                               [B : (Vecof Int) #:where (= (len B) (len A))]
               -> Int)
            (define (safe-dot-prod A B)
              (for/sum ([i (in-range (len A))])
                (* (safe-vec-ref A i) (safe-vec-ref B i))))
            """
        )

    def test_safe_dot_prod_without_where_rejected(self):
        # the paper's error box
        assert fails(
            """
            (: safe-dot-prod : (Vecof Int) (Vecof Int) -> Int)
            (define (safe-dot-prod A B)
              (for/sum ([i (in-range (len A))])
                (* (safe-vec-ref A i) (safe-vec-ref B i))))
            """
        )

    def test_dynamic_check_middle_ground(self):
        assert checks(
            """
            (: safe-dot-prod : [A : (Vecof Int)]
                               [B : (Vecof Int) #:where (= (len B) (len A))]
               -> Int)
            (define (safe-dot-prod A B)
              (for/sum ([i (in-range (len A))])
                (* (safe-vec-ref A i) (safe-vec-ref B i))))
            (: dot-prod : (Vecof Int) (Vecof Int) -> Int)
            (define (dot-prod A B)
              (unless (= (len A) (len B))
                (error "invalid vector lengths!"))
              (safe-dot-prod A B))
            """
        )

    def test_caller_must_establish_lengths(self):
        assert fails(
            """
            (: safe-dot-prod : [A : (Vecof Int)]
                               [B : (Vecof Int) #:where (= (len B) (len A))]
               -> Int)
            (define (safe-dot-prod A B)
              (for/sum ([i (in-range (len A))])
                (* (safe-vec-ref A i) (safe-vec-ref B i))))
            (: broken : (Vecof Int) (Vecof Int) -> Int)
            (define (broken A B) (safe-dot-prod A B))
            """
        )


class TestRefinementFlow:
    def test_nat_plus_nat_is_nat(self):
        assert checks(
            """
            (: f : Nat Nat -> Nat)
            (define (f a b) (+ a b))
            """
        )

    def test_nat_minus_nat_is_not_nat(self):
        assert fails(
            """
            (: f : Nat Nat -> Nat)
            (define (f a b) (- a b))
            """
        )

    def test_abs_is_nat(self):
        assert checks(
            """
            (: f : Int -> Nat)
            (define (f a) (abs a))
            """
        )

    def test_min_max_refinements(self):
        assert checks(
            """
            (: clamp : Int -> [r : Int #:where (and (<= 0 r) (<= r 255))])
            (define (clamp x) (max 0 (min x 255)))
            """
        )

    def test_modulo_bound(self):
        assert checks(
            """
            (: f : Int Pos -> Nat)
            (define (f x m) (modulo x m))
            """
        )

    def test_byte_is_nat(self):
        assert checks(
            """
            (: f : Byte -> Nat)
            (define (f b) b)
            """
        )
