"""End-to-end tests for the persistent checking service.

The acceptance properties of the daemon, pinned over real sockets:

* **Verdict equality** — a warm daemon answers repeated ``check``
  requests with verdicts identical to one-shot sequential checking
  over a pinned corpus slice (the same generator seed the batch
  benchmarks use).
* **Session isolation** — two concurrent connections cannot observe
  each other's definitions, and a session's cached module verdicts
  are scoped to that session.
* **Epoch discipline** — ``reset`` produces a genuinely cold re-check
  (no session-level replay), observable through the per-request stats
  deltas every response carries.
"""

import threading
import time

import pytest

from repro.batch import check_many
from repro.fuzz.gen import generate_program
from repro.logic.prove import Logic
from repro.server import CheckingServer, Client, ServerConfig, ServerError

CORPUS_SEED = 2016
CORPUS_SLICE = 6

GOOD = """
(: max : [x : Int] [y : Int]
   -> [z : Int #:where (and (>= z x) (>= z y))])
(define (max x y) (if (> x y) x y))
"""

BAD = """
(: f : Int -> Bool)
(define (f x) x)
"""


@pytest.fixture(scope="module")
def corpus_paths(tmp_path_factory):
    root = tmp_path_factory.mktemp("server-corpus")
    paths = []
    for index in range(CORPUS_SLICE):
        path = root / f"prog{index:03}.rkt"
        path.write_text(generate_program(CORPUS_SEED, index).source)
        paths.append(str(path))
    return paths


@pytest.fixture()
def server(tmp_path):
    daemon = CheckingServer(
        ServerConfig(socket_path=str(tmp_path / "repro.sock")),
        logic=Logic(),  # a private engine: tests stay order-independent
    )
    daemon.start()
    yield daemon
    daemon.stop()


@pytest.fixture()
def client(server):
    with Client(socket_path=server.config.socket_path) as connected:
        yield connected


def _connect(server):
    return Client(socket_path=server.config.socket_path)


class TestVerdictEquality:
    def test_warm_daemon_matches_one_shot_checking(self, server, client, corpus_paths):
        reference = check_many(corpus_paths, jobs=1, logic=Logic())
        expected = [(v.path, v.ok, v.error) for v in reference.verdicts]
        # repeated rounds: the engine only gets warmer, verdicts must not move
        for _round in range(2):
            response = client.try_check(corpus_paths)
            got = [(v["path"], v["ok"], v["error"]) for v in response["verdicts"]]
            assert got == expected

    def test_per_file_requests_match_batch_request(self, server, client, corpus_paths):
        batch = client.try_check(corpus_paths)["verdicts"]
        singles = [client.try_check([p])["verdicts"][0] for p in corpus_paths]
        assert [(v["path"], v["ok"], v["error"]) for v in batch] == [
            (v["path"], v["ok"], v["error"]) for v in singles
        ]

    def test_pooled_daemon_matches_one_shot_checking(self, tmp_path, corpus_paths):
        daemon = CheckingServer(
            ServerConfig(socket_path=str(tmp_path / "pooled.sock"), jobs=2)
        )
        daemon.start()
        try:
            with _connect(daemon) as connected:
                response = connected.try_check(corpus_paths)
            reference = check_many(corpus_paths, jobs=1, logic=Logic())
            assert [(v["path"], v["ok"], v["error"]) for v in response["verdicts"]] == [
                (v.path, v.ok, v.error) for v in reference.verdicts
            ]
        finally:
            daemon.stop()


class TestSessions:
    def test_check_text_incremental_recheck(self, client):
        first = client.check_text("mod", GOOD)
        assert first["ok"] and not first["cached"]
        assert first["stats"]["prove_calls"] > 0
        again = client.check_text("mod", GOOD)
        assert again["ok"] and again["cached"]
        # the unchanged re-check never touched the engine
        assert again["stats"]["prove_calls"] == 0
        edited = client.check_text("mod", GOOD + "\n(max 1 2)\n")
        assert edited["ok"] and not edited["cached"]

    def test_ill_typed_module_reports_error(self, client):
        response = client.check_text("bad", BAD)
        assert not response["ok"]
        assert response["code"] == "check-error"
        assert "Type Checker error" in response["error"]

    def test_eval_accumulates_scope(self, client):
        assert client.eval("(define (dbl x) (* 2 x))") == []
        assert client.eval("(dbl 21)") == ["42"]

    def test_eval_errors_leave_scope_intact(self, client):
        client.eval("(define (dbl x) (* 2 x))")
        with pytest.raises(ServerError, match="check-error"):
            client.eval("(dbl #t)")
        assert client.eval("(dbl 3)") == ["6"]

    def test_sessions_cannot_see_each_other(self, server):
        with _connect(server) as alice, _connect(server) as bob:
            alice.eval("(define secret 7)")
            with pytest.raises(ServerError):
                bob.eval("secret")
            # and Bob's own scope still works
            bob.eval("(define secret 99)")
            assert bob.eval("secret") == ["99"]
            assert alice.eval("secret") == ["7"]

    def test_module_store_is_session_scoped(self, server):
        with _connect(server) as alice, _connect(server) as bob:
            assert not alice.check_text("m", GOOD)["cached"]
            # same name, same text, different session: not *session*-cached
            assert not bob.check_text("m", GOOD)["cached"]
            assert alice.check_text("m", GOOD)["cached"]

    def test_concurrent_sessions_interleaved(self, server, corpus_paths):
        outcomes = {}

        def hammer(tag):
            with _connect(server) as connected:
                connected.eval(f"(define mine{tag} {tag})")
                response = connected.try_check(corpus_paths)
                values = connected.eval(f"mine{tag}")
                outcomes[tag] = (
                    [(v["path"], v["ok"]) for v in response["verdicts"]],
                    values,
                )

        threads = [
            threading.Thread(target=hammer, args=(tag,)) for tag in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        verdicts = {tag: outcomes[tag][0] for tag in outcomes}
        assert len(outcomes) == 4
        assert all(verdicts[tag] == verdicts[0] for tag in verdicts)
        assert all(outcomes[tag][1] == [str(tag)] for tag in outcomes)


class TestEpochAndStats:
    def test_reset_forces_cold_recheck(self, client):
        client.check_text("mod", GOOD)
        cached = client.check_text("mod", GOOD)
        assert cached["cached"]
        reset = client.reset()
        assert reset["epoch"] >= 1
        cold = client.check_text("mod", GOOD)
        assert not cold["cached"]
        assert cold["ok"]
        assert cold["stats"]["prove_calls"] > 0  # really re-proved

    @pytest.mark.slow
    def test_reset_tears_down_resident_pool_workers(self, tmp_path, corpus_paths):
        """Resident workers hold pre-reset caches; reset must re-fork."""
        daemon = CheckingServer(
            ServerConfig(socket_path=str(tmp_path / "rp.sock"), jobs=2)
        )
        daemon.start()
        try:
            with _connect(daemon) as connected:
                connected.try_check(corpus_paths)
                assert connected.stats()["server"]["pool"]["resident"]
                connected.reset()
                assert not connected.stats()["server"]["pool"]["resident"]
                # and pooled checking still works (lazy re-fork, cold)
                response = connected.try_check(corpus_paths)
                assert len(response["verdicts"]) == len(corpus_paths)
        finally:
            daemon.stop()

    def test_stop_restores_the_engine_dispatch(self, tmp_path):
        from repro.server.batcher import BatchingTheoryDispatch

        engine = Logic()
        original = engine.dispatch
        daemon = CheckingServer(
            ServerConfig(socket_path=str(tmp_path / "rd.sock")), logic=engine
        )
        assert isinstance(engine.dispatch, BatchingTheoryDispatch)
        daemon.start()
        daemon.stop()
        assert engine.dispatch is original

    def test_stats_reports_engine_and_server_state(self, client, corpus_paths):
        client.try_check(corpus_paths[:2])
        snapshot = client.stats()
        assert snapshot["protocol"] == 1
        assert snapshot["engine"]["prove_calls"] > 0
        assert snapshot["server"]["requests_total"] >= 1
        assert snapshot["session"]["requests"] >= 0

    def test_responses_carry_per_request_deltas(self, client):
        response = client.check_text("mod", GOOD)
        delta = response["stats"]
        assert delta["prove_calls"] > 0
        assert "theory_queries" in delta

    def test_warm_recheck_is_cheaper_than_cold(self, client, corpus_paths):
        path = corpus_paths[0]
        cold = client.try_check([path])["stats"]
        warm = client.try_check([path])["stats"]
        assert warm["prove_calls"] <= cold["prove_calls"]


class TestProtocolOverTheWire:
    def test_bad_request_answered_not_fatal(self, server, client):
        # hand-roll a bad request on the client's own stream
        client._stream.send({"op": "frobnicate"})
        response = client._stream.receive()
        assert not response["ok"]
        assert response["code"] == "bad-request"
        # the connection is still usable afterwards
        assert client.eval("(+ 1 1)") == ["2"]

    def test_shutdown_stops_the_server(self, server, client):
        response = client.shutdown()
        assert response["stopping"]
        server._stop.wait(timeout=5.0)
        assert server._stop.is_set()

    def test_tcp_transport(self, tmp_path, corpus_paths):
        daemon = CheckingServer(ServerConfig(port=0), logic=Logic())
        kind, (host, port) = daemon.start()
        assert kind == "tcp"
        try:
            with Client(host=host, port=port) as connected:
                response = connected.try_check(corpus_paths[:2])
                assert len(response["verdicts"]) == 2
        finally:
            daemon.stop()


class TestStopLatency:
    """RTR-006: stop() must not wait out a join timeout on the watcher.

    The shutdown-watcher thread blocks on ``_shutdown_requested``
    forever; before the fix, ``stop()`` never set that event, so every
    shutdown paid the full 5-second ``join`` timeout waiting on a
    thread that could not observe it (≈70s of pure teardown across
    this file alone).
    """

    def test_stop_completes_promptly(self, tmp_path):
        daemon = CheckingServer(
            ServerConfig(socket_path=str(tmp_path / "lat.sock")),
            logic=Logic(),
        )
        daemon.start()
        started = time.monotonic()
        daemon.stop()
        assert time.monotonic() - started < 2.0
