"""Differential lane-equivalence suite for the multi-lane daemon.

The multi-lane refactor is only allowed to buy concurrency, never to
change a single verdict: whatever lane a request lands on — and however
lanes interleave — the daemon must answer byte-for-byte what a fresh
in-process engine answers.  This file pins that contract over a slice
of the pinned seed-2016 fuzz corpus, three ways:

* sequentially, spread across every lane by per-program affinity keys,
  against both a ``lanes=1`` daemon and a fresh engine;
* under concurrent clients interleaving whole sessions on different
  lanes (each worker checks the corpus in its own shuffled order);
* across resets issued from a *different* lane than the one still
  serving (the epoch-convergence seam).

Run with ``REPRO_TEST_LANES=1`` to exercise the same suite over a
single-lane daemon (CI runs both).
"""

import hashlib
import json
import os
import random
import threading

import pytest

from repro.checker.check import Checker
from repro.checker.errors import CheckError
from repro.fuzz import generate_program
from repro.logic.prove import Logic
from repro.server import CheckingServer, Client, ServerConfig
from repro.sexp.reader import ReaderError
from repro.syntax.parser import ParseError, parse_program
from repro.tr.pretty import pretty_type

SEED = 2016
CORPUS = 16
LANES = max(1, int(os.environ.get("REPRO_TEST_LANES", "4")))


def _corpus():
    return [(f"m{i}", generate_program(SEED, i).source) for i in range(CORPUS)]


def _fresh_verdict(source):
    """What a brand-new engine says — the differential reference.

    Mirrors the daemon session's check path exactly: parse, check on a
    fresh engine, render types with the pretty-printer.
    """
    try:
        program = parse_program(source)
        types = Checker(logic=Logic()).check_program(program)
    except (ReaderError, ParseError, CheckError) as exc:
        return (False, str(exc), {})
    return (True, "", {n: pretty_type(t) for n, t in types.items()})


def _blob(name, ok, error, types):
    """The canonical byte encoding verdicts are compared under."""
    return json.dumps(
        {"name": name, "ok": ok, "error": error, "types": types},
        sort_keys=True,
    )


def _response_blob(name, response):
    return _blob(
        name,
        bool(response.get("ok")),
        response.get("error") or "",
        dict(response.get("types") or {}),
    )


def _start(tmp_path, tag, lanes, **overrides):
    daemon = CheckingServer(
        ServerConfig(
            socket_path=str(tmp_path / f"{tag}.sock"), lanes=lanes, **overrides
        ),
        logic=Logic(),
    )
    daemon.start()
    return daemon


def _keys_covering_all_lanes(lanes):
    """One affinity key per lane, derived from the daemon's own hash."""
    keys, attempt = {}, 0
    while len(keys) < lanes:
        key = f"lane-key-{attempt}"
        keys.setdefault(CheckingServer.lane_index_for(key, lanes), key)
        attempt += 1
    return keys


@pytest.fixture(scope="module")
def corpus():
    return _corpus()


@pytest.fixture(scope="module")
def fresh(corpus):
    """``name → (ok, error, types)`` from a fresh engine per program."""
    return {name: _fresh_verdict(source) for name, source in corpus}


class TestDifferentialEquivalence:
    def test_multi_lane_equals_single_lane_equals_fresh_engine(
        self, tmp_path, corpus, fresh
    ):
        """The tentpole contract: verdicts are invariant in the lane count."""
        single = _start(tmp_path, "single", lanes=1)
        multi = _start(tmp_path, "multi", lanes=LANES)
        try:
            single_blobs, multi_blobs = {}, {}
            with Client(socket_path=single.config.socket_path) as client:
                for name, source in corpus:
                    single_blobs[name] = _response_blob(
                        name, client.check_text(name, source)
                    )
            lanes_hit = set()
            for index, (name, source) in enumerate(corpus):
                # one pinned connection per program: the corpus spreads
                # over every lane instead of warming just one
                with Client(
                    socket_path=multi.config.socket_path,
                    affinity=f"prog-{index}",
                ) as client:
                    response = client.check_text(name, source)
                    lanes_hit.add(response["lane"])
                    multi_blobs[name] = _response_blob(name, response)
        finally:
            multi.stop()
            single.stop()
        fresh_blobs = {name: _blob(name, *fresh[name]) for name, _ in corpus}
        assert single_blobs == fresh_blobs
        assert multi_blobs == fresh_blobs
        if LANES > 1:
            assert len(lanes_hit) > 1, "affinity spread never left one lane"

    def test_concurrent_clients_interleaving_sessions(
        self, tmp_path, corpus, fresh
    ):
        """Workers on different lanes, shuffled orders, identical verdicts."""
        daemon = _start(tmp_path, "concurrent", lanes=LANES)
        workers = max(4, LANES)
        failures = []

        def run(worker):
            rng = random.Random(f"{SEED}:{worker}")
            order = list(corpus)
            rng.shuffle(order)
            try:
                with Client(
                    socket_path=daemon.config.socket_path,
                    affinity=f"worker-{worker}",
                ) as client:
                    for name, source in order:
                        mod = f"{name}-w{worker}"
                        got = _response_blob(mod, client.check_text(mod, source))
                        want = _blob(mod, *fresh[name])
                        if got != want:
                            failures.append(
                                f"worker {worker}: {name} diverged:\n{got}\n{want}"
                            )
            except Exception as exc:  # surfaced below; never swallowed
                failures.append(f"worker {worker}: {type(exc).__name__}: {exc}")

        try:
            threads = [
                threading.Thread(target=run, args=(w,), daemon=True)
                for w in range(workers)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=180.0)
            assert not any(t.is_alive() for t in threads), "a worker is stuck"
        finally:
            daemon.stop()
        assert not failures, failures[:3]


class TestRouting:
    def test_affinity_routes_to_the_hashed_lane_and_sticks(self, tmp_path, corpus):
        daemon = _start(tmp_path, "routing", lanes=LANES)
        name, source = corpus[0]
        try:
            keys = _keys_covering_all_lanes(LANES)
            assert sorted(keys) == list(range(LANES))
            for lane_index, key in keys.items():
                with Client(
                    socket_path=daemon.config.socket_path, affinity=key
                ) as client:
                    first = client.check_text(name, source)
                    again = client.check_text(name, source)
                    assert first["lane"] == lane_index
                    assert again["lane"] == lane_index
                    # same lane ⇒ same warm session store
                    assert again["cached"] is True
                # a reconnect with the same key lands on the same lane —
                # the hash is stable, not per-connection state
                with Client(
                    socket_path=daemon.config.socket_path, affinity=key
                ) as client:
                    assert client.check_text(name, source)["lane"] == lane_index
        finally:
            daemon.stop()

    def test_lane_index_for_is_stable(self):
        # pinned: the affinity hash must never drift (clients and
        # chaos scenarios both derive lane targets from it)
        expected = int(hashlib.sha256(b"alpha").hexdigest()[:8], 16) % 4
        assert CheckingServer.lane_index_for("alpha", 4) == expected

    def test_unpinned_connections_balance_over_lanes(self, tmp_path, corpus):
        if LANES == 1:
            pytest.skip("needs several lanes")
        daemon = _start(tmp_path, "balance", lanes=LANES)
        name, source = corpus[0]
        try:
            clients = [
                Client(socket_path=daemon.config.socket_path)
                for _ in range(LANES)
            ]
            try:
                lanes_hit = {
                    client.check_text(name, source)["lane"] for client in clients
                }
                # least-loaded routing: concurrent unpinned connections
                # spread instead of piling onto lane 0
                assert lanes_hit == set(range(LANES))
            finally:
                for client in clients:
                    client.close()
        finally:
            daemon.stop()


class TestResetConvergence:
    def test_reset_from_another_lane_reaches_every_lane(self, tmp_path, corpus):
        """The epoch seam: a reset on lane B must cold-start lane A too."""
        if LANES == 1:
            pytest.skip("needs several lanes")
        daemon = _start(tmp_path, "converge", lanes=LANES)
        name, source = corpus[0]
        keys = _keys_covering_all_lanes(LANES)
        try:
            with Client(
                socket_path=daemon.config.socket_path, affinity=keys[0]
            ) as warm, Client(
                socket_path=daemon.config.socket_path, affinity=keys[1]
            ) as resetter:
                first = warm.check_text(name, source)
                assert warm.check_text(name, source)["cached"] is True
                assert resetter.reset()["ok"] is True
                after = warm.check_text(name, source)
                # lane 0 synced lazily before serving: the session store
                # was dropped — a genuine cold re-check, same verdict
                assert after["cached"] is False
                assert _response_blob(name, after) == _response_blob(name, first)
        finally:
            daemon.stop()

    def test_reset_storm_across_lanes_never_yields_stale_verdicts(
        self, tmp_path, corpus, fresh
    ):
        daemon = _start(
            tmp_path, "storm", lanes=LANES, max_queue_depth=128
        )
        stop = threading.Event()
        errors = []

        def storm():
            try:
                with Client(
                    socket_path=daemon.config.socket_path, affinity="storm"
                ) as resetter:
                    while not stop.is_set():
                        resetter.reset()
            except Exception as exc:
                errors.append(f"storm: {type(exc).__name__}: {exc}")

        def check(worker):
            try:
                with Client(
                    socket_path=daemon.config.socket_path,
                    affinity=f"checker-{worker}",
                    retries=4,
                    jitter_seed=worker,
                ) as client:
                    for name, source in corpus[:8]:
                        got = _response_blob(name, client.check_text(name, source))
                        if got != _blob(name, *fresh[name]):
                            errors.append(f"worker {worker}: {name} went stale")
            except Exception as exc:
                errors.append(f"worker {worker}: {type(exc).__name__}: {exc}")

        storm_thread = threading.Thread(target=storm, daemon=True)
        checkers = [
            threading.Thread(target=check, args=(w,), daemon=True)
            for w in range(3)
        ]
        try:
            storm_thread.start()
            for thread in checkers:
                thread.start()
            for thread in checkers:
                thread.join(timeout=180.0)
            alive = any(t.is_alive() for t in checkers)
            stop.set()
            storm_thread.join(timeout=30.0)
            assert not alive, "a checker thread is stuck"
            assert not errors, errors[:3]
        finally:
            stop.set()
            daemon.stop()

    def test_epoch_is_monotone_across_daemon_restarts(self, tmp_path, corpus):
        """meta.json carries the epoch over one cache dir between daemons."""
        cache_dir = str(tmp_path / "epoch-cache")
        name, source = corpus[0]
        first = _start(tmp_path, "epoch-a", lanes=LANES, cache_dir=cache_dir)
        try:
            with Client(socket_path=first.config.socket_path) as client:
                client.check_text(name, source)
                epoch_a = client.reset()["epoch"]
                epoch_b = client.reset()["epoch"]
                assert epoch_b > epoch_a
        finally:
            first.stop()
        second = _start(tmp_path, "epoch-b", lanes=LANES, cache_dir=cache_dir)
        try:
            with Client(socket_path=second.config.socket_path) as client:
                client.check_text(name, source)
                assert client.reset()["epoch"] > epoch_b
        finally:
            second.stop()


class TestPerLaneStats:
    def test_stats_expose_per_lane_rows_and_merged_totals(self, tmp_path, corpus):
        daemon = _start(tmp_path, "stats", lanes=LANES)
        name, source = corpus[0]
        keys = _keys_covering_all_lanes(LANES)
        try:
            for key in keys.values():
                with Client(
                    socket_path=daemon.config.socket_path, affinity=key
                ) as client:
                    client.check_text(name, source)
            with Client(socket_path=daemon.config.socket_path) as client:
                client.ping()
                snapshot = client.stats()
        finally:
            daemon.stop()
        lanes = snapshot["server"]["lanes"]
        assert len(lanes) == LANES
        assert [row["index"] for row in lanes] == list(range(LANES))
        for row in lanes:
            assert row["engine_alive"] is True
            assert row["queue_depth"] == 0
            assert row["requests_total"] >= 1  # every lane was warmed
            assert row["groups_total"] >= 1
            assert 0.0 <= row["utilization"] <= 1.0
            assert row["epoch"] == snapshot["epoch"]
            assert set(row["robustness"]) == {
                "deadline_exceeded", "cancelled", "shed_overloaded",
                "watchdog_cancels", "lane_restarts",
            }
        merged = snapshot["server"]["robustness"]
        for key in ("deadline_exceeded", "cancelled", "shed_overloaded",
                    "watchdog_cancels", "lane_restarts"):
            assert merged[key] == sum(row["robustness"][key] for row in lanes)
        assert merged["pings"] >= 1
        assert snapshot["server"]["requests_total"] == sum(
            row["requests_total"] for row in lanes
        )
        assert snapshot["session"]["lane"] in range(LANES)

    def test_ping_reports_lane_counts(self, tmp_path):
        daemon = _start(tmp_path, "ping", lanes=LANES)
        try:
            with Client(socket_path=daemon.config.socket_path) as client:
                ping = client.ping()
        finally:
            daemon.stop()
        assert ping["lanes"] == LANES
        assert ping["lanes_alive"] == LANES
        assert ping["engine_alive"] is True
