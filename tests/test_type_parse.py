"""Tests for the type/prop/object annotation syntax."""

import pytest

from repro.sexp.reader import read
from repro.tr.objects import LEN, Var, obj_field, obj_int
from repro.tr.parse import (
    BYTE,
    NAT,
    TypeSyntaxError,
    index_type,
    parse_obj,
    parse_prop,
    parse_type,
    parse_type_text,
)
from repro.tr.props import And, IsType, LeqZero, Or, lin_le, lin_lt
from repro.tr.types import (
    BOOL,
    BOT,
    FALSE,
    INT,
    STR,
    TOP,
    TRUE,
    VOID,
    Fun,
    Pair,
    Poly,
    Refine,
    TVar,
    Union,
    Vec,
)


class TestBaseTypes:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("Int", INT),
            ("Integer", INT),
            ("Bool", BOOL),
            ("Any", TOP),
            ("Str", STR),
            ("Void", VOID),
            ("Bot", BOT),
            ("Nat", NAT),
            ("Byte", BYTE),
        ],
    )
    def test_named(self, text, expected):
        assert parse_type_text(text) == expected

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeSyntaxError):
            parse_type_text("Zorp")

    def test_union(self):
        # Bool is itself (U True False); unions flatten (normal form).
        assert parse_type_text("(U Int Bool)") == Union((INT, TRUE, FALSE))

    def test_union_of_base_types(self):
        assert parse_type_text("(U Int Str)") == Union((INT, STR))

    def test_pairof(self):
        assert parse_type_text("(Pairof Int Bool)") == Pair(INT, BOOL)

    def test_vecof(self):
        assert parse_type_text("(Vecof Int)") == Vec(INT)

    def test_nested(self):
        assert parse_type_text("(Vecof (Vecof Int))") == Vec(Vec(INT))


class TestRefinements:
    def test_refine_form(self):
        ty = parse_type_text("(Refine [i : Int] (<= 0 i))")
        assert isinstance(ty, Refine)
        assert ty.var == "i"
        assert ty.base == INT
        assert ty.prop == lin_le(obj_int(0), Var("i"))

    def test_nat_equivalence(self):
        ty = parse_type_text("(Refine [n : Int] (<= 0 n))")
        assert ty == NAT

    def test_chained_comparison(self):
        ty = parse_type_text("(Refine [b : Int] (<= 0 b 255))")
        assert isinstance(ty.prop, And)

    def test_len_object(self):
        ty = parse_type_text("(Refine [i : Nat] (<= i (len ds)))")
        assert isinstance(ty, Refine)
        atoms = [a for a, _ in ty.prop.expr.terms]
        assert obj_field(LEN, Var("ds")) in atoms


class TestFunctionTypes:
    def test_plain_arrow(self):
        ty = parse_type_text("(Int -> Int)")
        assert isinstance(ty, Fun)
        assert ty.arity == 1
        assert ty.arg_types() == (INT,)

    def test_named_args(self):
        ty = parse_type_text("([x : Int] [y : Int] -> Int)")
        assert ty.arg_names() == ("x", "y")

    def test_where_clause_on_range(self):
        ty = parse_type_text(
            "([x : Int] [y : Int] -> [z : Int #:where (and (>= z x) (>= z y))])"
        )
        rng = ty.result.type
        assert isinstance(rng, Refine)
        assert rng.var == "z"

    def test_where_clause_on_argument(self):
        ty = parse_type_text(
            "([v : (Vecof Int)] [i : Int #:where (< i (len v))] -> Int)"
        )
        assert isinstance(ty.args[1][1], Refine)

    def test_polymorphic(self):
        ty = parse_type_text("(All (A) ([v : (Vecof A)] -> A))")
        assert isinstance(ty, Poly)
        assert ty.tvars == ("A",)
        assert isinstance(ty.body, Fun)
        assert ty.body.result.type == TVar("A")

    def test_forall_unicode_flat(self):
        ty = parse_type_text("(∀ (A) [v : (Vecof A)] [i : Int] -> A)")
        assert isinstance(ty, Poly)
        assert ty.body.arity == 2

    def test_multiple_arrows_rejected(self):
        with pytest.raises(TypeSyntaxError):
            parse_type_text("(Int -> Int -> Int)")


class TestProps:
    def test_and_or(self):
        prop = parse_prop(read("(or (< x 0) (and (<= 0 x) (< x 10)))"))
        assert isinstance(prop, Or)

    def test_not_negates(self):
        prop = parse_prop(read("(not (<= x 0))"))
        assert prop == lin_le(obj_int(1), Var("x"))

    def test_type_membership(self):
        prop = parse_prop(read("(is x Int)"))
        assert prop == IsType(Var("x"), INT)

    def test_equality_chain(self):
        prop = parse_prop(read("(= a b)"))
        assert isinstance(prop, And)

    def test_bad_prop_rejected(self):
        with pytest.raises(TypeSyntaxError):
            parse_prop(read("(frob x)"))


class TestObjects:
    def test_var(self):
        assert parse_obj(read("x")) == Var("x")

    def test_literal(self):
        assert parse_obj(read("42")) == obj_int(42)

    def test_len(self):
        assert parse_obj(read("(len v)")) == obj_field(LEN, Var("v"))

    def test_arithmetic(self):
        obj = parse_obj(read("(- (len v) 1)"))
        assert obj == parse_obj(read("(+ (len v) -1)"))

    def test_scaling(self):
        obj = parse_obj(read("(* 2 x)"))
        assert obj == parse_obj(read("(+ x x)"))

    def test_nonconstant_product_rejected(self):
        with pytest.raises(TypeSyntaxError):
            parse_obj(read("(* x y)"))

    def test_index_type_helper(self):
        ty = index_type("v")
        assert isinstance(ty, Refine)
        assert ty.base == INT
