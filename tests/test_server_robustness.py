"""Robustness tests for the checking daemon (repro/server/daemon.py).

Deadlines abort mid-proof with a structured retryable error; the
bounded queue sheds load instead of queueing unboundedly; the watchdog
cancels hung requests and respawns a dead engine lane; and ``stop()``
wakes every blocked connection immediately — no 0.5s polling.
"""

import threading
import time

import pytest

from repro.chaos.faults import ChaosDispatch
from repro.logic.prove import Logic
from repro.server import CheckingServer, Client, ServerConfig, ServerError

THEORY_HEAVY = """
(: clamp : [x : Int] [y : Int]
   -> [z : Int #:where (and (>= z x) (>= z y))])
(define (clamp x y) (if (> x y) x y))
(define a (clamp 3 7))
"""

SIMPLE = "(define x 1)"


def _server(tmp_path, **overrides):
    settings = dict(
        socket_path=str(tmp_path / "robust.sock"),
        hang_seconds=0.0,  # tests opt in explicitly
    )
    settings.update(overrides)
    daemon = CheckingServer(ServerConfig(**settings), logic=Logic())
    daemon.start()
    return daemon


def _connect(daemon, **kwargs):
    return Client(socket_path=daemon.config.socket_path, **kwargs)


class TestDeadlines:
    def test_deadline_exceeded_is_structured_and_prompt(self, tmp_path):
        daemon = _server(tmp_path)
        try:
            daemon.logic.dispatch = ChaosDispatch(
                daemon.logic.dispatch, hang=True, max_faults=1
            )
            with _connect(daemon) as client:
                started = time.monotonic()
                with pytest.raises(ServerError) as info:
                    client.request(
                        "check_text", name="slow", text=THEORY_HEAVY,
                        deadline_ms=300,
                    )
                elapsed = time.monotonic() - started
                assert info.value.code == "deadline_exceeded"
                assert info.value.retryable is True
                assert elapsed < 5.0  # deadline + scheduling slack
                # the lane stays warm: the very next request succeeds
                assert client.check_text("after", THEORY_HEAVY)["ok"]
            assert daemon.robustness["deadline_exceeded"] == 1
        finally:
            daemon.stop()

    def test_pre_expired_deadline_never_reaches_engine(self, tmp_path):
        daemon = _server(tmp_path, default_deadline_ms=None)
        try:
            with _connect(daemon) as client:
                with pytest.raises(ServerError) as info:
                    client.request(
                        "check_text", name="tiny", text=SIMPLE,
                        deadline_ms=0.0001,
                    )
                assert info.value.code == "deadline_exceeded"
                assert client.check_text("ok", SIMPLE)["ok"]
        finally:
            daemon.stop()

    def test_server_default_deadline_applies(self, tmp_path):
        daemon = _server(tmp_path, default_deadline_ms=250.0)
        try:
            daemon.logic.dispatch = ChaosDispatch(
                daemon.logic.dispatch, hang=True, max_faults=1
            )
            with _connect(daemon) as client:
                with pytest.raises(ServerError) as info:
                    client.check_text("slow", THEORY_HEAVY)
                assert info.value.code == "deadline_exceeded"
        finally:
            daemon.stop()

    def test_bad_deadline_rejected_at_the_wire(self, tmp_path):
        daemon = _server(tmp_path)
        try:
            with _connect(daemon) as client:
                for bad in (0, -10, True, "soon"):
                    with pytest.raises(ServerError) as info:
                        client.request(
                            "check_text", name="m", text=SIMPLE,
                            deadline_ms=bad,
                        )
                    assert info.value.code == "bad-request"
                with pytest.raises(ServerError) as info:
                    client.request("stats", deadline_ms=100)
                assert info.value.code == "bad-request"
        finally:
            daemon.stop()


class TestBackpressure:
    def test_queue_overflow_sheds_with_retryable_error(self, tmp_path):
        daemon = _server(tmp_path, max_queue_depth=1, group_max=1)
        try:
            daemon.logic.dispatch = ChaosDispatch(
                daemon.logic.dispatch, delay_seconds=0.4, max_faults=2
            )
            outcomes = []
            lock = threading.Lock()

            def submit(worker):
                try:
                    with _connect(daemon) as client:
                        client.check_text(f"burst{worker}", THEORY_HEAVY)
                        outcome = ("ok", False)
                except ServerError as exc:
                    outcome = (exc.code, exc.retryable)
                with lock:
                    outcomes.append(outcome)

            threads = [
                threading.Thread(target=submit, args=(w,), daemon=True)
                for w in range(6)
            ]
            for thread in threads:
                thread.start()
                time.sleep(0.02)
            for thread in threads:
                thread.join(timeout=60.0)
            assert not any(thread.is_alive() for thread in threads)
            shed = [o for o in outcomes if o[0] == "overloaded"]
            assert shed, f"queue cap never shed: {outcomes}"
            assert all(retryable for _, retryable in shed)
            assert any(code == "ok" for code, _ in outcomes)
            assert daemon.robustness["shed_overloaded"] >= len(shed)
        finally:
            daemon.stop()

    def test_shed_request_can_be_retried_to_success(self, tmp_path):
        daemon = _server(tmp_path, max_queue_depth=1, group_max=1)
        try:
            daemon.logic.dispatch = ChaosDispatch(
                daemon.logic.dispatch, delay_seconds=0.3, max_faults=1
            )
            blocker = threading.Thread(
                target=lambda: _connect(daemon).check_text("bl", THEORY_HEAVY),
                daemon=True,
            )
            blocker.start()
            time.sleep(0.05)  # let the blocker occupy the lane
            with _connect(daemon, retries=8, backoff=0.05) as client:
                assert client.check_text("retried", SIMPLE)["ok"]
            blocker.join(timeout=30.0)
        finally:
            daemon.stop()


class TestWatchdog:
    def test_hung_request_is_cancelled(self, tmp_path):
        daemon = _server(tmp_path, hang_seconds=0.5)
        try:
            daemon.logic.dispatch = ChaosDispatch(
                daemon.logic.dispatch, hang=True, max_faults=1
            )
            with _connect(daemon) as client:
                with pytest.raises(ServerError) as info:
                    client.check_text("wedged", THEORY_HEAVY)
                assert info.value.code == "cancelled"
                assert info.value.retryable is True
                assert client.check_text("after", THEORY_HEAVY)["ok"]
            assert daemon.robustness["watchdog_cancels"] == 1
        finally:
            daemon.stop()

    def test_dead_lane_is_respawned(self, tmp_path):
        daemon = _server(tmp_path)
        try:

            class LaneKiller:
                def __init__(self, inner):
                    self.inner = inner
                    self.killed = False

                def _fault(self):
                    if not self.killed:
                        self.killed = True
                        raise SystemExit("injected lane death")

                def decide(self, env, goals):
                    self._fault()
                    return self.inner.decide(env, goals)

                def decide_one(self, env, goal):
                    self._fault()
                    return self.inner.decide_one(env, goal)

            daemon.logic.dispatch = LaneKiller(daemon.logic.dispatch)
            with _connect(daemon) as client:
                with pytest.raises(ServerError) as info:
                    client.check_text("killer", THEORY_HEAVY)
                assert "lane" in str(info.value)
                # the watchdog respawns the lane within an interval or
                # two: service continues
                deadline = time.monotonic() + 5.0
                while not client.ping()["engine_alive"]:
                    assert time.monotonic() < deadline, "lane never respawned"
                    time.sleep(0.05)
                assert client.check_text("after", THEORY_HEAVY)["ok"]
            assert daemon.robustness["lane_restarts"] == 1
        finally:
            daemon.stop()


class TestStopWakesWaiters:
    def test_stop_releases_blocked_connections_immediately(self, tmp_path):
        daemon = _server(tmp_path)
        daemon.logic.dispatch = ChaosDispatch(
            daemon.logic.dispatch, hang=True, max_faults=1
        )
        released = []

        def blocked():
            try:
                with _connect(daemon) as client:
                    client.check_text("wedge", THEORY_HEAVY)
            except (ServerError, OSError, Exception):
                pass
            released.append(time.monotonic())

        waiter = threading.Thread(target=blocked, daemon=True)
        waiter.start()
        time.sleep(0.3)  # the request is now wedged in the engine
        stopped_at = time.monotonic()
        daemon.stop()
        waiter.join(timeout=5.0)
        assert released, "blocked connection never released after stop()"
        assert released[0] - stopped_at < 3.0


class TestObservability:
    def test_ping_is_answered_off_lane(self, tmp_path):
        daemon = _server(tmp_path)
        try:
            daemon.logic.dispatch = ChaosDispatch(
                daemon.logic.dispatch, hang=True, max_faults=1
            )
            def wedge():
                try:
                    with _connect(daemon, retries=0) as busy_client:
                        busy_client.request(
                            "check_text", name="w", text=THEORY_HEAVY,
                            deadline_ms=800,
                        )
                except ServerError:
                    pass  # deadline_exceeded: expected

            busy = threading.Thread(target=wedge, daemon=True)
            busy.start()
            time.sleep(0.2)  # the lane is wedged now
            with _connect(daemon) as client:
                started = time.monotonic()
                ping = client.ping()
                assert time.monotonic() - started < 0.5
                assert ping["ok"] and ping["engine_alive"]
            busy.join(timeout=30.0)
        finally:
            daemon.stop()

    def test_stats_expose_robustness_counters(self, tmp_path):
        daemon = _server(tmp_path)
        try:
            with _connect(daemon) as client:
                client.ping()
                stats = client.stats()["server"]
                assert stats["queue"]["max_depth"] == daemon.config.max_queue_depth
                robustness = stats["robustness"]
                for key in (
                    "deadline_exceeded", "cancelled", "shed_overloaded",
                    "watchdog_cancels", "lane_restarts", "pings",
                    "cache_shards_skipped",
                ):
                    assert key in robustness
                assert robustness["pings"] >= 1
        finally:
            daemon.stop()
