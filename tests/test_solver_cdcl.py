"""Property tests for the CDCL SAT core.

The three guarantees worth pinning:

* **models** — every SAT answer comes with an assignment satisfying
  the whole CNF;
* **learning** — every learnt clause is a logical consequence of the
  input formula (refuting its negation under the reference DPLL);
* **agreement** — verdicts match the reference DPLL on random ≤20-var
  instances, and assumption-based solving matches solving with the
  assumptions added as unit clauses.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.solvers.cdcl import CDCL, luby
from repro.solvers.reference import dpll_solve
from repro.solvers.sat import IncrementalSatSolver, solve


def random_cnf(rng, n_vars, n_clauses, width=3):
    cnf = []
    for _ in range(n_clauses):
        size = rng.randint(1, width)
        variables = rng.sample(range(1, n_vars + 1), min(size, n_vars))
        cnf.append([v if rng.random() < 0.5 else -v for v in variables])
    return cnf


def ref_verdict(cnf):
    sat, _model, _conflicts = dpll_solve(cnf)
    return sat


def satisfies(cnf, model):
    return all(
        any(model.get(abs(lit), False) == (lit > 0) for lit in clause)
        for clause in cnf
    )


def cnf_strategy(max_vars=8, max_clauses=16):
    lit = st.integers(min_value=1, max_value=max_vars).flatmap(
        lambda v: st.sampled_from([v, -v])
    )
    clause = st.lists(lit, min_size=1, max_size=3)
    return st.lists(clause, min_size=1, max_size=max_clauses)


class TestModels:
    @settings(max_examples=200, deadline=None)
    @given(cnf_strategy())
    def test_sat_models_satisfy_cnf(self, cnf):
        engine = CDCL()
        engine.add_clauses(cnf)
        sat, model = engine.solve()
        if sat:
            assert satisfies(cnf, model)

    @settings(max_examples=100, deadline=None)
    @given(cnf_strategy())
    def test_facade_solve_matches_engine(self, cnf):
        result = solve(cnf, backend="fast")
        sat = ref_verdict(cnf)
        assert result.sat == sat
        if result.sat:
            assert satisfies(cnf, result.model)


class TestLearning:
    def test_learnt_clauses_are_implied(self):
        rng = random.Random(2024)
        checked = 0
        for _ in range(30):
            # strict 3-SAT near the phase transition: forces conflicts
            cnf = [
                [v if rng.random() < 0.5 else -v
                 for v in rng.sample(range(1, 13), 3)]
                for _ in range(52)
            ]
            engine = CDCL()
            engine.add_clauses(cnf)
            engine.solve()
            for learnt in engine._learnts[:10]:
                # CNF ∧ ¬learnt must be UNSAT if the clause is implied
                refute = [list(cl) for cl in cnf]
                refute.extend([[-lit] for lit in learnt])
                assert not ref_verdict(refute), f"learnt clause {learnt} not implied"
                checked += 1
        assert checked > 0, "no learnt clauses exercised — weaken the inputs"

    def test_restarts_preserve_verdict(self):
        # pigeonhole forces many conflicts, hence Luby restarts
        holes = 5
        pigeons = holes + 1
        var = lambda p, h: p * holes + h + 1
        cnf = [[var(p, h) for h in range(holes)] for p in range(pigeons)]
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    cnf.append([-var(p1, h), -var(p2, h)])
        engine = CDCL()
        engine.add_clauses(cnf)
        sat, _ = engine.solve()
        assert not sat
        assert engine.conflicts > 0

    def test_luby_sequence_prefix(self):
        assert [luby(i) for i in range(1, 16)] == [
            1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8,
        ]


class TestAgreement:
    @settings(max_examples=150, deadline=None)
    @given(cnf_strategy(max_vars=8, max_clauses=20))
    def test_verdict_matches_dpll_small(self, cnf):
        ref_sat = ref_verdict(cnf)
        engine = CDCL()
        engine.add_clauses(cnf)
        sat, _ = engine.solve()
        assert sat == ref_sat

    def test_verdict_matches_dpll_20var(self):
        rng = random.Random(77)
        for _ in range(40):
            cnf = random_cnf(rng, 20, rng.randint(30, 85))
            ref_sat = ref_verdict(cnf)
            engine = CDCL()
            engine.add_clauses(cnf)
            sat, _ = engine.solve()
            assert sat == ref_sat

    def test_assumptions_match_units(self):
        rng = random.Random(9)
        for _ in range(60):
            cnf = random_cnf(rng, 10, 30)
            assumptions = [
                v if rng.random() < 0.5 else -v
                for v in rng.sample(range(1, 11), 3)
            ]
            engine = CDCL()
            engine.add_clauses(cnf)
            sat_assumed, model = engine.solve(assumptions=assumptions)
            ref_sat = ref_verdict(cnf + [[lit] for lit in assumptions])
            assert sat_assumed == ref_sat
            if sat_assumed:
                assert satisfies(cnf, model)
                for lit in assumptions:
                    assert model.get(abs(lit)) == (lit > 0)

    def test_assumptions_do_not_persist(self):
        engine = CDCL()
        engine.add_clauses([[1, 2], [-1, 2]])
        sat, _ = engine.solve(assumptions=[-2])
        assert not sat
        sat, model = engine.solve()
        assert sat and model[2] is True


class TestIncrementalFacade:
    def test_push_pop_matches_fresh_solves(self):
        rng = random.Random(5)
        for _ in range(25):
            base = random_cnf(rng, 9, 18)
            extra = random_cnf(rng, 9, 6)
            inc = IncrementalSatSolver(backend="fast")
            for clause in base:
                inc.add_clause(clause)
            baseline = inc.check_sat()
            inc.push()
            for clause in extra:
                inc.add_clause(clause)
            combined = inc.check_sat()
            inc.pop()
            ref_base = ref_verdict(base)
            ref_comb = ref_verdict(base + extra)
            assert baseline == ref_base
            assert combined == ref_comb
            assert inc.check_sat() == ref_base  # pop really retracted

    def test_learned_clauses_survive_pop(self):
        # solving under a pushed frame then popping must not corrupt
        # later answers (selector units retire the frame's clauses)
        inc = IncrementalSatSolver(backend="fast")
        inc.add_clause([1, 2])
        inc.push()
        inc.add_clause([-1])
        inc.add_clause([-2])
        assert inc.check_sat() is False
        inc.pop()
        assert inc.check_sat() is True

    def test_resource_budget_raises(self):
        holes = 7
        pigeons = holes + 1
        var = lambda p, h: p * holes + h + 1
        cnf = [[var(p, h) for h in range(holes)] for p in range(pigeons)]
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    cnf.append([-var(p1, h), -var(p2, h)])
        engine = CDCL()
        engine.add_clauses(cnf)
        with pytest.raises(ResourceWarning):
            engine.solve(max_conflicts=5)
