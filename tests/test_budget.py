"""Unit tests for request budgets (repro/budget.py) and their kernel hooks.

The budget is the cancellation seam: a deadline or an explicit cancel
must abort the engine mid-proof (saturate worklist, prover frame loop,
simplex pivots, CDCL search) via a structured retryable exception,
and the engine must stay consistent afterwards.
"""

import threading
import time

import pytest

from repro.budget import (
    Budget,
    CancelledError,
    DeadlineExceeded,
    JobCancelled,
    activate,
    current_budget,
)
from repro.checker.check import Checker
from repro.checker.errors import CheckError
from repro.logic.prove import Logic
from repro.syntax.parser import parse_program

THEORY_HEAVY = """
(: clamp : [x : Int] [y : Int]
   -> [z : Int #:where (and (>= z x) (>= z y))])
(define (clamp x y) (if (> x y) x y))
(define a (clamp 3 7))
"""


class TestBudget:
    def test_no_deadline_never_expires(self):
        budget = Budget()
        for _ in range(10_000):
            budget.tick()
        budget.check()  # no raise

    def test_expired_deadline_raises_on_check(self):
        budget = Budget(deadline_ms=0.01)
        time.sleep(0.005)
        with pytest.raises(DeadlineExceeded) as info:
            budget.check()
        assert info.value.code == "deadline_exceeded"
        assert info.value.retryable is True

    def test_tick_is_stride_amortised(self):
        budget = Budget(deadline_ms=0.01, stride=256)
        time.sleep(0.005)
        # the first (stride - 1) ticks are credit decrements only
        for _ in range(255):
            budget.tick()
        with pytest.raises(DeadlineExceeded):
            budget.tick()  # 256th tick performs the real check

    def test_cancel_raises_job_cancelled(self):
        budget = Budget()
        budget.cancel("watchdog: test")
        with pytest.raises(JobCancelled) as info:
            budget.check()
        assert info.value.code == "cancelled"
        assert "watchdog" in str(info.value)

    def test_cancel_wins_from_another_thread(self):
        budget = Budget()
        released = threading.Event()

        def spin():
            try:
                while True:
                    budget.tick()
                    time.sleep(0.001)
            except CancelledError:
                released.set()

        worker = threading.Thread(target=spin, daemon=True)
        worker.start()
        budget.cancel("stop")
        assert released.wait(timeout=5.0)

    def test_invalid_deadline_rejected(self):
        with pytest.raises(ValueError):
            Budget(deadline_ms=0)
        with pytest.raises(ValueError):
            Budget(deadline_ms=-5)
        with pytest.raises(ValueError):
            Budget(deadline_ms=True)

    def test_bound_stats_count_aborts(self):
        rule_hits = {}
        budget = Budget(deadline_ms=0.01)
        budget.bind_stats(rule_hits)
        time.sleep(0.005)
        with pytest.raises(DeadlineExceeded):
            budget.check()
        assert rule_hits["budget.deadline-exceeded"] == 1


class TestActivation:
    def test_current_budget_defaults_to_none(self):
        assert current_budget() is None

    def test_activate_scopes_and_restores(self):
        outer, inner = Budget(), Budget()
        with activate(outer):
            assert current_budget() is outer
            with activate(inner):
                assert current_budget() is inner
            assert current_budget() is outer
        assert current_budget() is None

    def test_activation_is_thread_local(self):
        budget = Budget()
        seen = []

        def probe():
            seen.append(current_budget())

        with activate(budget):
            worker = threading.Thread(target=probe)
            worker.start()
            worker.join()
        assert seen == [None]


class TestLogicBudgeted:
    def test_expired_budget_aborts_checking(self):
        checker = Checker(logic=Logic())
        program = parse_program(THEORY_HEAVY)
        budget = Budget(deadline_ms=0.01)
        time.sleep(0.005)
        with pytest.raises(DeadlineExceeded):
            with checker.logic.budgeted(budget):
                checker.check_program(program)

    def test_engine_stays_consistent_after_abort(self):
        checker = Checker(logic=Logic())
        program = parse_program(THEORY_HEAVY)
        budget = Budget(deadline_ms=0.01)
        time.sleep(0.005)
        with pytest.raises(DeadlineExceeded):
            with checker.logic.budgeted(budget):
                checker.check_program(program)
        # the same engine, unbudgeted: the verdict is unaffected
        Checker(logic=checker.logic).check_program(parse_program(THEORY_HEAVY))

    def test_budgeted_none_is_a_no_op(self):
        logic = Logic()
        with logic.budgeted(None) as active:
            assert active is None
            assert logic.budget is None

    def test_abort_never_poisons_caches(self):
        # verdicts after an abort equal a fresh engine's: nothing
        # half-proved was memoised
        logic = Logic()
        checker = Checker(logic=logic)
        program = parse_program(THEORY_HEAVY)
        budget = Budget(deadline_ms=0.01)
        time.sleep(0.005)
        with pytest.raises(CancelledError):
            with logic.budgeted(budget):
                checker.check_program(program)
        warm = Checker(logic=logic).check_program(parse_program(THEORY_HEAVY))
        fresh = Checker(logic=Logic()).check_program(parse_program(THEORY_HEAVY))
        assert set(warm) == set(fresh)

    def test_ill_typed_still_rejected_under_budget(self):
        checker = Checker(logic=Logic())
        program = parse_program("(: f : Int -> Bool)\n(define (f x) x)")
        with checker.logic.budgeted(Budget(deadline_ms=60_000)):
            with pytest.raises(CheckError):
                checker.check_program(program)
