"""Tests for the Δ table (checker) and δ (interpreter) staying in sync."""

import pytest

from repro.checker.prims import (
    PRIMS,
    PRIM_ALIASES,
    enriched_counts,
    is_prim_name,
    prim_type,
    resolve_prim_name,
)
from repro.interp.delta import DELTA, apply_prim
from repro.interp.values import RacketError, UnsafeMemoryError, VOID_VALUE
from repro.tr.props import Alias, IsType, LeqZero, NotType
from repro.tr.results import TypeResult
from repro.tr.types import Fun, Poly


class TestTableConsistency:
    def test_every_prim_has_runtime_behaviour(self):
        missing = [name for name in PRIMS if name not in DELTA]
        assert missing == []

    def test_every_runtime_prim_is_typed(self):
        missing = [name for name in DELTA if name not in PRIMS]
        assert missing == []

    def test_arities_match(self):
        for name, entry in PRIMS.items():
            ty = entry.type
            fun = ty.body if isinstance(ty, Poly) else ty
            assert isinstance(fun, Fun)
            assert fun.arity == DELTA[name][0], name

    def test_aliases_resolve(self):
        for alias, target in PRIM_ALIASES.items():
            assert target in PRIMS, alias

    def test_resolution(self):
        assert resolve_prim_name("vec-ref") == "vec-ref"
        assert resolve_prim_name("vector-ref") == "vec-ref"
        assert resolve_prim_name("nonsense") is None
        assert is_prim_name("≤")


class TestEnrichedEnvironment:
    """§5: 'modifying the type of 36 functions... 7 vector operations,
    16 arithmetic operations, 12 fixnum operations, and equal?'."""

    def test_total_is_36(self):
        assert enriched_counts()["total"] == 36

    def test_vector_count(self):
        assert enriched_counts()["vector"] == 7

    def test_arithmetic_count(self):
        assert enriched_counts()["arithmetic"] == 16

    def test_fixnum_count(self):
        assert enriched_counts()["fixnum"] == 12

    def test_equal_enriched(self):
        assert enriched_counts()["equal?"] == 1


class TestPrimTypeShapes:
    def test_predicates_emit_type_props(self):
        ty = prim_type("int?")
        assert isinstance(ty.result.then_prop, IsType)
        assert isinstance(ty.result.else_prop, NotType)

    def test_comparison_emits_theory_props(self):
        ty = prim_type("<")
        assert isinstance(ty.result.then_prop, LeqZero)
        assert isinstance(ty.result.else_prop, LeqZero)

    def test_addition_emits_object(self):
        ty = prim_type("+")
        assert not ty.result.obj.is_null()

    def test_multiplication_has_no_object(self):
        ty = prim_type("*")
        assert ty.result.obj.is_null()

    def test_equal_emits_alias(self):
        ty = prim_type("equal?")
        assert isinstance(ty.result.then_prop, Alias)

    def test_len_object_is_len_field(self):
        ty = prim_type("len")
        assert "len" in repr(ty.body.result.obj)

    def test_safe_vec_ref_domain_is_refined(self):
        ty = prim_type("safe-vec-ref")
        from repro.tr.types import Refine

        assert isinstance(ty.body.args[1][1], Refine)

    def test_unsafe_vec_ref_domain_is_not_refined(self):
        ty = prim_type("unsafe-vec-ref")
        from repro.tr.types import Int

        assert isinstance(ty.body.args[1][1], Int)


class TestDelta:
    def test_arithmetic(self):
        assert apply_prim("+", (2, 3)) == 5
        assert apply_prim("modulo", (7, 3)) == 1
        assert apply_prim("max", (2, 9)) == 9

    def test_predicates_reject_bools_as_ints(self):
        assert apply_prim("int?", (True,)) is False
        assert apply_prim("int?", (3,)) is True
        assert apply_prim("bool?", (True,)) is True

    def test_division_by_zero_is_checked(self):
        with pytest.raises(RacketError):
            apply_prim("quotient", (1, 0))

    def test_vec_ref_checked(self):
        with pytest.raises(RacketError):
            apply_prim("vec-ref", ([1, 2], 5))

    def test_unsafe_vec_ref_is_memory_unsafe(self):
        with pytest.raises(UnsafeMemoryError):
            apply_prim("unsafe-vec-ref", ([1, 2], 5))

    def test_safe_vec_ref_behaves_like_unsafe(self):
        assert apply_prim("safe-vec-ref", ([10, 20], 1)) == 20
        with pytest.raises(UnsafeMemoryError):
            apply_prim("safe-vec-ref", ([10, 20], -1))

    def test_vec_set(self):
        vec = [1, 2, 3]
        assert apply_prim("vec-set!", (vec, 1, 9)) is VOID_VALUE
        assert vec == [1, 9, 3]

    def test_make_vec(self):
        assert apply_prim("make-vec", (3, 0)) == [0, 0, 0]

    def test_make_vec_negative_rejected(self):
        with pytest.raises(RacketError):
            apply_prim("make-vec", (-1, 0))

    def test_bitwise(self):
        assert apply_prim("AND", (0b1100, 0b1010)) == 0b1000
        assert apply_prim("XOR", (0b1100, 0b1010)) == 0b0110
        assert apply_prim("NOT", (0x00,)) == 0xFF
        assert apply_prim("SHL", (1, 4)) == 16

    def test_equal_structural(self):
        from repro.interp.values import PairV

        assert apply_prim("equal?", (PairV(1, 2), PairV(1, 2))) is True
        assert apply_prim("equal?", ([1, 2], [1, 2])) is True
        assert apply_prim("equal?", (1, True)) is False

    def test_error_raises(self):
        with pytest.raises(RacketError):
            apply_prim("error", ("boom",))

    def test_fixnum_overflow_checked(self):
        with pytest.raises(RacketError):
            apply_prim("fx+", (2**62 - 1, 2**62 - 1))

    def test_wrong_arity(self):
        with pytest.raises(RacketError):
            apply_prim("+", (1,))
