"""Farm mode end to end: a live daemon, diffed verdicts, triage.

The tier-1 slice spawns one real ``python -m repro serve`` daemon and
runs a small campaign through it; the ``fuzz``-marked campaign below
scales the budget for the CI farm job.
"""

import json
import multiprocessing

import pytest

from repro.fuzz.farm import FarmConfig, run_farm


def _fork_available() -> bool:
    try:
        return "fork" in multiprocessing.get_all_start_methods()
    except Exception:
        return False


def test_farm_config_validates():
    with pytest.raises(ValueError):
        FarmConfig(count=-1)


def test_farm_campaign_against_spawned_daemon():
    config = FarmConfig(seed=3, count=6, guided=True)
    report = run_farm(config)
    assert report.spawned
    assert report.programs == 6
    assert report.checks > report.programs  # mutants rode along
    assert report.daemon_accepted >= 6      # every base program accepted
    assert report.ok, [v.describe() for v in report.divergences]
    assert report.coverage is not None and report.coverage["points"] > 0
    # the summary is JSON-serializable and carries the digest
    summary = report.as_dict()
    assert summary["digest"] == report.digest()
    json.dumps(summary)


def test_farm_digest_is_deterministic_across_daemons():
    config = FarmConfig(seed=11, count=4, mutants=False)
    first = run_farm(config)
    second = run_farm(config)
    assert first.programs == second.programs == 4
    assert first.digest() == second.digest()
    assert first.coverage["digest"] == second.coverage["digest"]


def test_farm_wall_clock_budget_stops_early():
    config = FarmConfig(seed=5, count=10_000, budget_seconds=1.5, mutants=False)
    report = run_farm(config)
    assert 0 < report.programs < 10_000
    # the digest covers exactly the completed prefix
    assert report.digest() == report.digest()


@pytest.mark.fuzz
def test_farm_campaign_scaled():
    """The CI farm job's pytest half (scaled via the fuzz marker)."""
    report = run_farm(FarmConfig(seed=2016, count=60, guided=True))
    assert report.ok, [v.describe() for v in report.divergences]
    assert report.programs == 60
