"""Tests for subtyping (Figure 5), including refinement and result rules."""

from hypothesis import given, settings, strategies as st

from repro.logic.env import Env
from repro.logic.prove import Logic
from repro.tr.objects import LEN, Var, obj_field, obj_int
from repro.tr.parse import BYTE, NAT, POS
from repro.tr.props import IsType, TT, lin_le, lin_lt
from repro.tr.results import TypeResult, true_result
from repro.tr.types import (
    BOOL,
    BOT,
    FALSE,
    INT,
    STR,
    TOP,
    TRUE,
    VOID,
    Fun,
    Pair,
    Poly,
    Refine,
    TVar,
    Vec,
    make_union,
)

LOGIC = Logic()
ENV = Env()


def sub(a, b):
    return LOGIC.subtype(ENV, a, b)


class TestCore:
    def test_reflexive_base(self):
        for ty in (INT, BOOL, TRUE, FALSE, STR, VOID, TOP):
            assert sub(ty, ty)

    def test_top(self):
        assert sub(INT, TOP)
        assert sub(Vec(INT), TOP)
        assert not sub(TOP, INT)

    def test_bot_below_everything(self):
        assert sub(BOT, INT)
        assert sub(BOT, BOT)

    def test_union_intro(self):
        assert sub(INT, make_union([INT, STR]))
        assert sub(TRUE, BOOL)

    def test_union_elim(self):
        assert sub(make_union([TRUE, FALSE]), BOOL)
        assert not sub(make_union([INT, STR]), INT)

    def test_pair_covariant(self):
        assert sub(Pair(TRUE, INT), Pair(BOOL, TOP))
        assert not sub(Pair(BOOL, INT), Pair(TRUE, INT))

    def test_vec_invariant(self):
        assert sub(Vec(INT), Vec(INT))
        assert not sub(Vec(TRUE), Vec(BOOL))
        assert not sub(Vec(BOOL), Vec(TRUE))


class TestRefinements:
    def test_weakening(self):
        assert sub(NAT, INT)  # S-Weaken via S-Refine1

    def test_not_strengthening(self):
        assert not sub(INT, NAT)

    def test_refinement_implication(self):
        le5 = Refine("x", INT, lin_le(Var("x"), obj_int(5)))
        le10 = Refine("x", INT, lin_le(Var("x"), obj_int(10)))
        assert sub(le5, le10)
        assert not sub(le10, le5)

    def test_byte_below_nat(self):
        assert sub(BYTE, NAT)
        assert not sub(NAT, BYTE)

    def test_pos_below_nat(self):
        assert sub(POS, NAT)

    def test_trivial_refinement_equals_base(self):
        trivial = Refine("x", INT, TT)
        assert sub(trivial, INT)
        assert sub(INT, trivial)

    def test_refinement_of_union(self):
        refined = Refine("x", make_union([INT, STR]), TT)
        assert sub(refined, make_union([INT, STR]))

    def test_alpha_invariance(self):
        a = Refine("x", INT, lin_le(obj_int(0), Var("x")))
        b = Refine("y", INT, lin_le(obj_int(0), Var("y")))
        assert sub(a, b)
        assert sub(b, a)


class TestFunctions:
    def test_contravariant_domain(self):
        f = Fun((("x", INT),), true_result(INT))
        g = Fun((("x", NAT),), true_result(INT))
        assert sub(f, g)  # Int-accepting works where Nat-accepting expected
        assert not sub(g, f)

    def test_covariant_range(self):
        f = Fun((("x", INT),), true_result(NAT))
        g = Fun((("x", INT),), true_result(INT))
        assert sub(f, g)
        assert not sub(g, f)

    def test_arity_mismatch(self):
        f = Fun((("x", INT),), true_result(INT))
        g = Fun((("x", INT), ("y", INT)), true_result(INT))
        assert not sub(f, g)

    def test_dependent_range_uses_domain(self):
        # [x:Nat -> {r:Int | 0 ≤ r ≤ x}] <: [x:Nat -> Nat]
        bounded = Refine(
            "r", INT,
            lin_le(obj_int(0), Var("r")),
        )
        f = Fun((("x", NAT),), true_result(bounded))
        g = Fun((("x", NAT),), true_result(NAT))
        assert sub(f, g)

    def test_dependent_domain_refinement(self):
        # safe-vec-ref's domain: index refinements are compared under v's type
        idx = Refine(
            "i", INT,
            lin_lt(Var("i"), obj_field(LEN, Var("v"))),
        )
        f = Fun((("v", Vec(INT)), ("i", INT)), true_result(INT))
        g = Fun((("v", Vec(INT)), ("i", idx)), true_result(INT))
        assert sub(f, g)  # accepting any Int index is more general
        assert not sub(g, f)

    def test_poly_alpha_equivalence(self):
        f = Poly(("A",), Fun((("v", Vec(TVar("A"))),), true_result(TVar("A"))))
        g = Poly(("B",), Fun((("v", Vec(TVar("B"))),), true_result(TVar("B"))))
        assert sub(f, g)


class TestResults:
    def test_object_refines_type_obligation(self):
        # (Int; ...; x) with x > 5 in env is a subtype of ({r | r > 5}; tt|tt; ∅)
        env = LOGIC.extend(ENV, IsType(Var("x"), INT))
        env = LOGIC.extend(env, lin_lt(obj_int(5), Var("x")))
        sub_result = TypeResult(INT, TT, TT, Var("x"))
        sup_result = TypeResult(
            Refine("r", INT, lin_lt(obj_int(5), Var("r"))), TT, TT
        )
        assert LOGIC.result_subtype(env, sub_result, sup_result)

    def test_prop_implication(self):
        sub_result = TypeResult(BOOL, IsType(Var("x"), INT), TT)
        sup_result = TypeResult(BOOL, IsType(Var("x"), make_union([INT, STR])), TT)
        env = LOGIC.extend(ENV, IsType(Var("x"), TOP))
        assert LOGIC.result_subtype(env, sub_result, sup_result)

    def test_prop_implication_fails(self):
        sub_result = TypeResult(BOOL, TT, TT)
        sup_result = TypeResult(BOOL, IsType(Var("x"), INT), TT)
        env = LOGIC.extend(ENV, IsType(Var("x"), TOP))
        assert not LOGIC.result_subtype(env, sub_result, sup_result)

    def test_existential_binder_opened(self):
        # ∃z:Nat.(Int; tt|tt; z) <: (Nat; tt|tt; ∅)
        sub_result = TypeResult(INT, TT, TT, Var("z"), (("z", NAT),))
        sup_result = TypeResult(NAT, TT, TT)
        assert LOGIC.result_subtype(ENV, sub_result, sup_result)

    def test_object_mismatch_rejected(self):
        sub_result = TypeResult(INT, TT, TT, Var("x"))
        sup_result = TypeResult(INT, TT, TT, Var("y"))
        env = LOGIC.extend(ENV, IsType(Var("x"), INT))
        env = LOGIC.extend(env, IsType(Var("y"), INT))
        assert not LOGIC.result_subtype(env, sub_result, sup_result)


_base_types = st.sampled_from([INT, BOOL, TRUE, FALSE, STR, VOID, NAT, BYTE, POS])
_types = st.recursive(
    _base_types,
    lambda inner: st.one_of(
        st.builds(Pair, inner, inner),
        st.builds(Vec, inner),
        st.builds(lambda ts: make_union(ts), st.lists(inner, min_size=1, max_size=3)),
    ),
    max_leaves=6,
)


@settings(max_examples=80, deadline=None)
@given(_types)
def test_subtyping_reflexive(ty):
    assert sub(ty, ty)


@settings(max_examples=60, deadline=None)
@given(_types, _types, _types)
def test_subtyping_transitive(a, b, c):
    if sub(a, b) and sub(b, c):
        assert sub(a, c)


@settings(max_examples=80, deadline=None)
@given(_types)
def test_everything_below_top_and_above_bot(ty):
    assert sub(ty, TOP)
    assert sub(BOT, ty)
