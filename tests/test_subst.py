"""Tests for substitution over types, propositions and type-results."""

from repro.tr.objects import FST, LEN, NULL, Var, obj_field, obj_int
from repro.tr.props import IsType, LeqZero, TT, lin_le, lin_lt
from repro.tr.results import TypeResult, true_result
from repro.tr.subst import (
    close_result,
    lift_subst,
    prop_subst,
    result_free_vars,
    result_subst,
    type_free_vars,
    type_subst,
    type_subst_tvars,
)
from repro.tr.types import (
    BOOL,
    INT,
    Fun,
    Pair,
    Poly,
    Refine,
    TVar,
    Vec,
    make_union,
)


class TestTypeSubst:
    def test_base_types_untouched(self):
        assert type_subst(INT, {"x": Var("y")}) == INT

    def test_refinement_prop_substituted(self):
        ty = Refine("r", INT, lin_le(Var("r"), Var("x")))
        out = type_subst(ty, {"x": Var("y")})
        assert out == Refine("r", INT, lin_le(Var("r"), Var("y")))

    def test_refinement_binder_shadows(self):
        ty = Refine("x", INT, lin_le(Var("x"), obj_int(5)))
        out = type_subst(ty, {"x": Var("y")})
        assert out == ty  # the bound x is untouched

    def test_fun_arg_shadows_in_result(self):
        fun = Fun((("x", INT),), true_result(INT, Var("x")))
        out = type_subst(fun, {"x": Var("z")})
        assert out == fun

    def test_fun_free_var_in_domain(self):
        fun = Fun((("a", Refine("a", INT, lin_lt(Var("a"), Var("n")))),),
                  true_result(INT))
        out = type_subst(fun, {"n": obj_int(10)})
        assert "n" not in type_free_vars(out)

    def test_union_distributes(self):
        ty = make_union([Refine("r", INT, lin_le(Var("r"), Var("x"))), BOOL])
        out = type_subst(ty, {"x": obj_int(3)})
        assert "x" not in type_free_vars(out)


class TestPropSubst:
    def test_null_discards_atom(self):
        prop = lin_le(Var("x"), obj_int(3))
        assert prop_subst(prop, {"x": NULL}) == TT

    def test_constant_folding_after_subst(self):
        prop = lin_le(Var("x"), obj_int(3))
        assert prop_subst(prop, {"x": obj_int(2)}) == TT

    def test_field_path_substitution(self):
        prop = lin_lt(Var("i"), obj_field(LEN, Var("v")))
        out = prop_subst(prop, {"v": Var("w")})
        assert isinstance(out, LeqZero)
        assert obj_field(LEN, Var("w")) in [a for a, _ in out.expr.terms]


class TestLiftSubst:
    def test_substitutes_when_object_known(self):
        result = true_result(INT, Var("x"))
        out = lift_subst(result, "x", INT, obj_int(7))
        assert out.obj == obj_int(7)
        assert out.binders == ()

    def test_existential_when_object_null(self):
        result = true_result(Refine("r", INT, lin_le(Var("r"), Var("x"))))
        out = lift_subst(result, "x", INT, NULL)
        assert len(out.binders) == 1
        name, ty = out.binders[0]
        assert ty == INT
        assert name in result_free_vars(
            TypeResult(out.type, out.then_prop, out.else_prop, out.obj)
        )

    def test_no_binder_when_var_absent(self):
        result = true_result(INT)
        out = lift_subst(result, "x", INT, NULL)
        assert out.binders == ()

    def test_close_result_erases_binders(self):
        result = true_result(INT, Var("x"))
        lifted = lift_subst(result, "x", INT, NULL)
        closed = close_result(lifted)
        assert closed.binders == ()
        assert closed.obj.is_null()

    def test_close_result_weakens_props_to_tt(self):
        prop_result = TypeResult(INT, lin_le(Var("x"), obj_int(0)), TT, NULL)
        lifted = lift_subst(prop_result, "x", INT, NULL)
        closed = close_result(lifted)
        assert closed.then_prop == TT


class TestTVarSubst:
    def test_tvar_replaced(self):
        assert type_subst_tvars(TVar("A"), {"A": INT}) == INT

    def test_vec_elem(self):
        assert type_subst_tvars(Vec(TVar("A")), {"A": INT}) == Vec(INT)

    def test_poly_shadows(self):
        poly = Poly(("A",), Vec(TVar("A")))
        assert type_subst_tvars(poly, {"A": INT}) == poly

    def test_fun_result(self):
        fun = Fun((("v", Vec(TVar("A"))),), true_result(TVar("A")))
        out = type_subst_tvars(fun, {"A": BOOL})
        assert out.args[0][1] == Vec(BOOL)
        assert out.result.type == BOOL

    def test_pair_both_sides(self):
        out = type_subst_tvars(Pair(TVar("A"), TVar("B")), {"A": INT, "B": BOOL})
        assert out == Pair(INT, BOOL)


class TestFreeVars:
    def test_refinement(self):
        ty = Refine("r", INT, lin_le(Var("r"), Var("n")))
        assert type_free_vars(ty) == {"n"}

    def test_fun_binds_progressively(self):
        fun = Fun(
            (("v", Vec(INT)), ("i", Refine("i", INT, lin_lt(Var("i"), obj_field(LEN, Var("v")))))),
            true_result(INT),
        )
        assert type_free_vars(fun) == frozenset()

    def test_result_binders_bind(self):
        result = TypeResult(
            INT, lin_le(Var("z"), obj_int(0)), TT, Var("z"), (("z", INT),)
        )
        assert "z" not in result_free_vars(result)
