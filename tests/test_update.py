"""Tests for the Figure 7 metafunctions: restrict, remove, update, overlap."""

from repro.logic.env import Env
from repro.logic.prove import Logic
from repro.logic.update import overlap, remove, restrict, update
from repro.tr.objects import FST, LEN, SND, Var, obj_int
from repro.tr.parse import NAT
from repro.tr.props import lin_le
from repro.tr.types import (
    BOOL,
    BOT,
    FALSE,
    INT,
    STR,
    TOP,
    TRUE,
    VOID,
    Fun,
    Pair,
    Refine,
    TVar,
    Union,
    Vec,
    make_union,
)
from repro.tr.results import true_result


def _subtype():
    logic = Logic()
    env = Env()
    return lambda a, b: logic.subtype(env, a, b)


class TestOverlap:
    def test_distinct_bases_disjoint(self):
        assert not overlap(INT, STR)
        assert not overlap(TRUE, FALSE)
        assert not overlap(INT, BOOL)
        assert not overlap(Vec(INT), Pair(INT, INT))

    def test_same_base_overlaps(self):
        assert overlap(INT, INT)
        assert overlap(Vec(INT), Vec(BOOL))  # conservative

    def test_top_overlaps_everything(self):
        assert overlap(TOP, INT)
        assert overlap(Vec(INT), TOP)

    def test_tvar_conservative(self):
        assert overlap(TVar("A"), INT)

    def test_union_distributes(self):
        assert overlap(make_union([INT, STR]), STR)
        assert not overlap(make_union([INT, STR]), BOOL)

    def test_refinement_uses_base(self):
        assert overlap(NAT, INT)
        assert not overlap(NAT, STR)

    def test_pairs_pointwise(self):
        assert overlap(Pair(INT, INT), Pair(INT, INT))
        assert not overlap(Pair(INT, INT), Pair(STR, INT))

    def test_functions_conservative(self):
        f = Fun((("x", INT),), true_result(INT))
        g = Fun((("x", STR),), true_result(STR))
        assert overlap(f, g)


class TestRestrict:
    def test_disjoint_gives_bot(self):
        assert restrict(INT, STR, _subtype()) == BOT

    def test_subtype_keeps_left(self):
        assert restrict(NAT, INT, _subtype()) == NAT

    def test_union_distributes(self):
        u = make_union([INT, STR])
        assert restrict(u, INT, _subtype()) == INT

    def test_occurrence_typing_classic(self):
        # (U Int (Pairof Int Int)) restricted by Pair leaves the pair
        u = make_union([INT, Pair(INT, INT)])
        assert restrict(u, Pair(TOP, TOP), _subtype()) == Pair(INT, INT)

    def test_incomparable_takes_right(self):
        # Int restricted by Nat: the refinement wins (Figure 7's fallback)
        assert restrict(INT, NAT, _subtype()) == NAT

    def test_refinement_preserved_on_left(self):
        ty = Refine("x", make_union([INT, STR]), lin_le(Var("x"), obj_int(5)))
        out = restrict(ty, INT, _subtype())
        assert isinstance(out, Refine)
        assert out.base == INT

    def test_right_union_distributes(self):
        out = restrict(INT, make_union([NAT, STR]), _subtype())
        assert out == NAT


class TestRemove:
    def test_remove_whole_type(self):
        assert remove(INT, INT, _subtype()) == BOT

    def test_remove_from_union(self):
        u = make_union([INT, STR])
        assert remove(u, INT, _subtype()) == STR

    def test_least_significant_bit_shape(self):
        # (U Int (Vecof Int)) minus Int = (Vecof Int): the §2 example shape
        u = make_union([INT, Vec(INT)])
        assert remove(u, INT, _subtype()) == Vec(INT)

    def test_remove_unrelated_keeps(self):
        assert remove(INT, STR, _subtype()) == INT

    def test_remove_false_from_bool(self):
        assert remove(BOOL, FALSE, _subtype()) == TRUE

    def test_refinement_wrapper_kept(self):
        ty = Refine("x", BOOL, lin_le(obj_int(0), obj_int(0)))
        out = remove(ty, FALSE, _subtype())
        assert isinstance(out, Refine)
        assert out.base == TRUE


class TestUpdate:
    def test_positive_fst(self):
        pair = Pair(make_union([INT, STR]), BOOL)
        out = update(pair, (FST,), INT, True, _subtype())
        assert out == Pair(INT, BOOL)

    def test_negative_snd(self):
        pair = Pair(INT, BOOL)
        out = update(pair, (SND,), FALSE, False, _subtype())
        assert out == Pair(INT, TRUE)

    def test_nested_path(self):
        nested = Pair(Pair(make_union([INT, STR]), VOID), BOOL)
        out = update(nested, (FST, FST), INT, True, _subtype())
        assert out == Pair(Pair(INT, VOID), BOOL)

    def test_len_path_is_noop(self):
        vec = Vec(INT)
        assert update(vec, (LEN,), NAT, True, _subtype()) == vec

    def test_union_distributes(self):
        u = make_union([Pair(INT, BOOL), Pair(STR, BOOL)])
        out = update(u, (FST,), INT, True, _subtype())
        assert out == Pair(INT, BOOL)

    def test_empty_path_restricts(self):
        assert update(make_union([INT, STR]), (), INT, True, _subtype()) == INT

    def test_empty_path_removes(self):
        assert update(make_union([INT, STR]), (), INT, False, _subtype()) == STR
