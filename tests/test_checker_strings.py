"""Safe string indexing — the len-field machinery on a second data type."""

import pytest

from repro.checker.check import check_program_text
from repro.checker.errors import CheckError
from repro.interp.eval import run_program_text
from repro.interp.values import UnsafeMemoryError


def checks(src):
    check_program_text(src)
    return True


def fails(src):
    with pytest.raises(CheckError):
        check_program_text(src)
    return True


class TestStringLength:
    def test_length_is_nat(self):
        assert checks(
            """
            (: f : Str -> Nat)
            (define (f s) (string-length s))
            """
        )

    def test_length_object_enables_guards(self):
        assert checks(
            """
            (: first-char : Str -> Int)
            (define (first-char s)
              (if (< 0 (string-length s))
                  (safe-string-ref s 0)
                  0))
            """
        )

    def test_unguarded_safe_access_rejected(self):
        assert fails(
            """
            (: f : Str -> Int)
            (define (f s) (safe-string-ref s 0))
            """
        )

    def test_last_char_pattern(self):
        assert checks(
            """
            (: last-char : Str -> Int)
            (define (last-char s)
              (if (< 0 (string-length s))
                  (safe-string-ref s (- (string-length s) 1))
                  0))
            """
        )

    def test_index_loop_over_string(self):
        assert checks(
            """
            (: char-sum : Str -> Int)
            (define (char-sum s)
              (for/sum ([i (in-range (string-length s))])
                (safe-string-ref s i)))
            """
        )

    def test_off_by_one_rejected(self):
        assert fails(
            """
            (: f : Str -> Int)
            (define (f s)
              (if (<= 0 (string-length s))
                  (safe-string-ref s (string-length s))
                  0))
            """
        )


class TestStringRuntime:
    def test_first_char_runs(self):
        src = """
        (: first-char : Str -> Int)
        (define (first-char s)
          (if (< 0 (string-length s))
              (safe-string-ref s 0)
              0))
        (first-char "abc")
        (first-char "")
        """
        check_program_text(src)
        _defs, results = run_program_text(src)
        assert results == (ord("a"), 0)

    def test_char_sum_runs(self):
        src = """
        (define (char-sum s)
          (for/sum ([i (in-range (string-length s))])
            (safe-string-ref s i)))
        (char-sum "hi")
        """
        _defs, results = run_program_text(src)
        assert results == (ord("h") + ord("i"),)

    def test_unsafe_string_access_crashes(self):
        with pytest.raises(UnsafeMemoryError):
            run_program_text('(safe-string-ref "ab" 5)')

    def test_checked_string_ref_is_graceful(self):
        from repro.interp.values import RacketError

        with pytest.raises(RacketError):
            run_program_text('(string-ref "ab" 5)')
