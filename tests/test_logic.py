"""Tests for the proof system (Figure 6) and hybrid environments (§4.1)."""

from repro.logic.alias import AliasClasses
from repro.logic.env import Env, split_path
from repro.logic.prove import Logic
from repro.tr.objects import (
    FST,
    LEN,
    SND,
    BVExpr,
    FieldRef,
    Var,
    obj_field,
    obj_int,
    obj_pair,
)
from repro.tr.parse import BYTE, NAT
from repro.tr.props import (
    FF,
    TT,
    BVProp,
    IsType,
    NotType,
    lin_eq,
    lin_le,
    lin_lt,
    make_alias,
    make_and,
    make_or,
)
from repro.tr.results import TypeResult, true_result
from repro.tr.types import (
    BOOL,
    BOT,
    FALSE,
    INT,
    STR,
    TOP,
    TRUE,
    Pair,
    Refine,
    Union,
    Vec,
    make_union,
)

LOGIC = Logic()


def _env(*props):
    env = Env()
    for prop in props:
        env = LOGIC.extend(env, prop)
    return env


x, y, v, p = Var("x"), Var("y"), Var("v"), Var("p")


class TestAliasClasses:
    def test_find_unregistered_is_identity(self):
        classes = AliasClasses()
        assert classes.find(x) == x

    def test_union_then_same_class(self):
        classes = AliasClasses()
        classes.union(x, y)
        assert classes.same_class(x, y)

    def test_representative_prefers_informative(self):
        classes = AliasClasses()
        length = obj_field(LEN, v)
        classes.union(x, length)
        assert classes.find(x) == length

    def test_let_style_tie_prefers_right(self):
        classes = AliasClasses()
        classes.union(x, y)  # x bound to y: y is the representative
        assert classes.find(x) == y

    def test_copy_is_independent(self):
        classes = AliasClasses()
        classes.union(x, y)
        dup = classes.copy()
        dup.union(v, p)
        assert not classes.same_class(v, p)

    def test_classes_listing(self):
        classes = AliasClasses()
        classes.union(x, y)
        groups = classes.classes()
        assert len(groups) == 1
        assert set(groups[0]) == {x, y}


class TestSplitPath:
    def test_plain_var(self):
        assert split_path(x) == (x, ())

    def test_single_field(self):
        assert split_path(obj_field(FST, p)) == (p, (FST,))

    def test_nested_root_outward(self):
        obj = obj_field(FST, obj_field(SND, p))
        assert split_path(obj) == (p, (SND, FST))


class TestOccurrenceTyping:
    def test_learn_positive(self):
        env = _env(IsType(x, make_union([INT, BOOL])), IsType(x, INT))
        assert LOGIC.proves(env, IsType(x, INT))

    def test_learn_negative_leaves_remainder(self):
        env = _env(IsType(x, make_union([INT, BOOL])), NotType(x, INT))
        assert LOGIC.proves(env, IsType(x, BOOL))

    def test_not_proved_without_info(self):
        env = _env(IsType(x, make_union([INT, BOOL])))
        assert not LOGIC.proves(env, IsType(x, INT))

    def test_top_always_provable(self):
        env = _env(IsType(x, INT))
        assert LOGIC.proves(env, IsType(x, TOP))

    def test_pair_field_update(self):
        # learning (fst p) ∈ Int refines p's type (L-Update+)
        env = _env(
            IsType(p, Pair(make_union([INT, STR]), BOOL)),
            IsType(obj_field(FST, p), INT),
        )
        assert LOGIC.proves(env, IsType(p, Pair(INT, BOOL)))

    def test_pair_field_negative_update(self):
        env = _env(
            IsType(p, Pair(make_union([INT, STR]), BOOL)),
            NotType(obj_field(FST, p), INT),
        )
        assert LOGIC.proves(env, IsType(p, Pair(STR, BOOL)))

    def test_typefork(self):
        # ⟨x, y⟩ ∈ Int × Bool decomposes (L-TypeFork)
        env = _env(IsType(obj_pair(x, y), Pair(INT, BOOL)))
        assert LOGIC.proves(env, IsType(x, INT))
        assert LOGIC.proves(env, IsType(y, BOOL))

    def test_bot_is_inconsistent(self):
        env = _env(IsType(x, INT), NotType(x, INT))
        assert LOGIC.proves(env, FF)
        # L-Bot: anything follows
        assert LOGIC.proves(env, IsType(y, STR))

    def test_refinement_unpacked_on_learn(self):
        env = _env(IsType(x, NAT))
        assert LOGIC.proves(env, lin_le(obj_int(0), x))

    def test_refinement_introduction(self):
        env = _env(IsType(x, INT), lin_le(obj_int(0), x))
        assert LOGIC.proves(env, IsType(x, NAT))  # L-RefI

    def test_l_not_via_contradiction(self):
        big = Refine("r", INT, lin_le(obj_int(10), Var("r")))
        env = _env(IsType(x, INT), lin_le(x, obj_int(5)))
        assert LOGIC.proves(env, NotType(x, big))


class TestTheoryReasoning:
    def test_transitivity(self):
        env = _env(IsType(x, INT), IsType(y, INT), lin_le(x, y), lin_le(y, obj_int(5)))
        assert LOGIC.proves(env, lin_le(x, obj_int(5)))

    def test_vector_length_nonneg_derived(self):
        env = _env(IsType(v, Vec(INT)))
        assert LOGIC.proves(env, lin_le(obj_int(0), obj_field(LEN, v)))

    def test_index_safety_shape(self):
        env = _env(
            IsType(v, Vec(INT)),
            IsType(x, NAT),
            lin_lt(x, obj_field(LEN, v)),
        )
        goal = make_and([lin_le(obj_int(0), x), lin_lt(x, obj_field(LEN, v))])
        assert LOGIC.proves(env, goal)

    def test_unprovable_theory_goal(self):
        env = _env(IsType(x, INT))
        assert not LOGIC.proves(env, lin_le(x, obj_int(0)))

    def test_alias_transport(self):
        # end ≡ (len A); x < end ⊢ x < (len A)  (L-Transport via representatives)
        A, end = Var("A"), Var("end")
        env = _env(
            IsType(A, Vec(INT)),
            IsType(x, INT),
            make_alias(end, obj_field(LEN, A)),
            lin_lt(x, end),
        )
        assert LOGIC.proves(env, lin_lt(x, obj_field(LEN, A)))

    def test_case_split_on_disjunction(self):
        # (x ≤ 3 ∨ x ≤ 5) ⊢ x ≤ 5
        env = _env(
            IsType(x, INT),
            make_or([lin_le(x, obj_int(3)), lin_le(x, obj_int(5))]),
        )
        assert LOGIC.proves(env, lin_le(x, obj_int(5)))

    def test_inconsistent_disjunction(self):
        env = _env(
            IsType(x, INT),
            lin_le(x, obj_int(0)),
            make_or([lin_le(obj_int(5), x), lin_le(obj_int(3), x)]),
        )
        assert LOGIC.proves(env, FF)

    def test_bitvector_goal(self):
        num = Var("num")
        env = _env(IsType(num, BYTE))
        masked = BVExpr("and", (num, 0x7F), 8)
        assert LOGIC.proves(env, lin_le(masked, obj_int(127)))

    def test_bitvector_equality_fact(self):
        num = Var("num")
        env = _env(
            IsType(num, BYTE),
            BVProp("=", obj_int(0), BVExpr("and", (num, 0x80), 8), 8),
        )
        # high bit clear ⟹ num ≤ 127
        assert LOGIC.proves(env, lin_le(num, obj_int(127)))


class TestRepresentativeAblation:
    def test_alias_reasoning_without_representatives(self):
        logic = Logic(use_representatives=False)
        A, end = Var("A"), Var("end")
        env = Env()
        for prop in (
            IsType(A, Vec(INT)),
            IsType(x, INT),
            make_alias(end, obj_field(LEN, A)),
            lin_lt(x, end),
        ):
            env = logic.extend(env, prop)
        # Equality export to the theory keeps this provable, just slower.
        assert logic.proves(env, lin_lt(x, obj_field(LEN, A)))
