"""Tests for the Fourier-Motzkin solver, including brute-force oracles."""

import itertools

from hypothesis import given, settings, strategies as st

from repro.solvers.linear import (
    Constraint,
    SAT,
    UNKNOWN,
    UNSAT,
    fm_entails,
    fm_satisfiable,
)


def c(coeffs, const):
    return Constraint.make(coeffs, const)


class TestBasics:
    def test_empty_is_sat(self):
        assert fm_satisfiable([]) == SAT

    def test_trivial_constraint(self):
        assert fm_satisfiable([c({}, -1)]) == SAT

    def test_constant_contradiction(self):
        assert fm_satisfiable([c({}, 1)]) == UNSAT

    def test_single_variable_sat(self):
        assert fm_satisfiable([c({"x": 1}, -5)]) == SAT  # x ≤ 5

    def test_window_sat(self):
        # 0 ≤ x ≤ 5
        assert fm_satisfiable([c({"x": -1}, 0), c({"x": 1}, -5)]) == SAT

    def test_empty_window_unsat(self):
        # x ≤ 2 and x ≥ 3
        assert fm_satisfiable([c({"x": 1}, -2), c({"x": -1}, 3)]) == UNSAT

    def test_chain_unsat(self):
        # x < y, y < z, z < x
        constraints = [
            c({"x": 1, "y": -1}, 1),
            c({"y": 1, "z": -1}, 1),
            c({"z": 1, "x": -1}, 1),
        ]
        assert fm_satisfiable(constraints) == UNSAT

    def test_chain_sat(self):
        constraints = [
            c({"x": 1, "y": -1}, 1),
            c({"y": 1, "z": -1}, 1),
        ]
        assert fm_satisfiable(constraints) == SAT


class TestIntegerTightening:
    def test_gcd_normalisation_detects_integer_gap(self):
        # 2x ≤ 1 and 2x ≥ 1: rationally SAT (x = 1/2), integrally UNSAT.
        constraints = [c({"x": 2}, -1), c({"x": -2}, 1)]
        assert fm_satisfiable(constraints) == UNSAT

    def test_gcd_normalisation_keeps_integer_solution(self):
        # 2x ≤ 4 and 2x ≥ 4 → x = 2
        constraints = [c({"x": 2}, -4), c({"x": -2}, 4)]
        assert fm_satisfiable(constraints) == SAT

    def test_normalized_constant_floor(self):
        con = c({"x": 3}, -7).normalized()  # 3x ≤ 7 → x ≤ 2
        assert con.coeffs == ((("x"), 1),) or con.coeffs == (("x", 1),)
        assert con.const == -2


class TestEntailment:
    def test_transitivity(self):
        # x ≤ y, y ≤ z ⊨ x ≤ z
        assumptions = [c({"x": 1, "y": -1}, 0), c({"y": 1, "z": -1}, 0)]
        goal = c({"x": 1, "z": -1}, 0)
        assert fm_entails(assumptions, goal)

    def test_not_entailed(self):
        assumptions = [c({"x": 1, "y": -1}, 0)]
        goal = c({"y": 1, "x": -1}, 0)
        assert not fm_entails(assumptions, goal)

    def test_vector_bounds_query(self):
        # 0 ≤ i, i < n, n = m  ⊨  i < m   (the safe-vec-ref shape)
        assumptions = [
            c({"i": -1}, 0),
            c({"i": 1, "n": -1}, 1),
            c({"n": 1, "m": -1}, 0),
            c({"m": 1, "n": -1}, 0),
        ]
        assert fm_entails(assumptions, c({"i": 1, "m": -1}, 1))

    def test_strictness_matters(self):
        # 0 ≤ i, i ≤ n does NOT entail i < n
        assumptions = [c({"i": -1}, 0), c({"i": 1, "n": -1}, 0)]
        assert not fm_entails(assumptions, c({"i": 1, "n": -1}, 1))

    def test_unsat_assumptions_entail_anything(self):
        assumptions = [c({"x": 1}, -2), c({"x": -1}, 3)]
        assert fm_entails(assumptions, c({"y": 1}, 5))

    def test_work_bound_gives_unknown(self):
        constraints = [
            c({f"x{i}": 1, f"x{(i + 1) % 12}": -1, f"x{(i + 5) % 12}": 2}, -i)
            for i in range(12)
        ] + [c({f"x{i}": -1, f"x{(i + 3) % 12}": 1}, i - 4) for i in range(12)]
        verdict = fm_satisfiable(constraints, max_constraints=5)
        assert verdict in (UNKNOWN, UNSAT, SAT)  # no crash; bounded work


def _brute_force_sat(constraints, bound=4):
    """Ground-truth satisfiability over a small integer box."""
    atoms = sorted({a for con in constraints for a, _ in con.coeffs})
    if not atoms:
        return all(con.const <= 0 for con in constraints)
    for values in itertools.product(range(-bound, bound + 1), repeat=len(atoms)):
        env = dict(zip(atoms, values))
        if all(
            sum(coeff * env[a] for a, coeff in con.coeffs) + con.const <= 0
            for con in constraints
        ):
            return True
    return False


_small_constraints = st.lists(
    st.builds(
        lambda coeffs, const: Constraint.make(dict(coeffs), const),
        st.lists(
            st.tuples(st.sampled_from(["x", "y", "z"]), st.integers(-3, 3)),
            min_size=1,
            max_size=3,
        ),
        st.integers(-6, 6),
    ),
    min_size=1,
    max_size=5,
)


@settings(max_examples=200, deadline=None)
@given(_small_constraints)
def test_fm_unsat_agrees_with_brute_force(constraints):
    """UNSAT answers are sound: no integer solution exists in any box."""
    if fm_satisfiable(constraints) == UNSAT:
        assert not _brute_force_sat(constraints, bound=8)


@settings(max_examples=200, deadline=None)
@given(_small_constraints)
def test_brute_force_solution_implies_not_unsat(constraints):
    """If a small solution exists, FM must not answer UNSAT."""
    if _brute_force_sat(constraints, bound=4):
        assert fm_satisfiable(constraints) != UNSAT
