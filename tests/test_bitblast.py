"""Tests for bit-blasting: encoded operations match Python semantics."""

from hypothesis import given, settings, strategies as st

from repro.solvers.bitblast import BitBlaster

WIDTH = 8
_bytes = st.integers(0, 255)


def _assert_equals_value(blaster, bits, value):
    """Assert 'bits == value' is forced, by checking the negation UNSAT."""
    expected = blaster.constant(value % (1 << len(bits)), len(bits))
    eq = blaster.bv_eq(bits, expected)
    blaster.assert_lit(-eq)
    assert not blaster.check_sat()


@settings(max_examples=60, deadline=None)
@given(_bytes, _bytes)
def test_and(a, b):
    blaster = BitBlaster()
    result = blaster.bv_and(blaster.constant(a, WIDTH), blaster.constant(b, WIDTH))
    _assert_equals_value(blaster, result, a & b)


@settings(max_examples=60, deadline=None)
@given(_bytes, _bytes)
def test_or(a, b):
    blaster = BitBlaster()
    result = blaster.bv_or(blaster.constant(a, WIDTH), blaster.constant(b, WIDTH))
    _assert_equals_value(blaster, result, a | b)


@settings(max_examples=60, deadline=None)
@given(_bytes, _bytes)
def test_xor(a, b):
    blaster = BitBlaster()
    result = blaster.bv_xor(blaster.constant(a, WIDTH), blaster.constant(b, WIDTH))
    _assert_equals_value(blaster, result, a ^ b)


@settings(max_examples=60, deadline=None)
@given(_bytes, _bytes)
def test_add_mod_256(a, b):
    blaster = BitBlaster()
    result = blaster.bv_add(blaster.constant(a, WIDTH), blaster.constant(b, WIDTH))
    _assert_equals_value(blaster, result, (a + b) % 256)


@settings(max_examples=30, deadline=None)
@given(_bytes, _bytes)
def test_mul_mod_256(a, b):
    blaster = BitBlaster()
    result = blaster.bv_mul(blaster.constant(a, WIDTH), blaster.constant(b, WIDTH))
    _assert_equals_value(blaster, result, (a * b) % 256)


@settings(max_examples=40, deadline=None)
@given(_bytes, st.integers(0, 7))
def test_shifts(a, k):
    blaster = BitBlaster()
    shl = blaster.bv_shl(blaster.constant(a, WIDTH), k)
    _assert_equals_value(blaster, shl, (a << k) % 256)
    blaster2 = BitBlaster()
    shr = blaster2.bv_lshr(blaster2.constant(a, WIDTH), k)
    _assert_equals_value(blaster2, shr, a >> k)


@settings(max_examples=60, deadline=None)
@given(_bytes, _bytes)
def test_comparisons(a, b):
    blaster = BitBlaster()
    av, bv = blaster.constant(a, WIDTH), blaster.constant(b, WIDTH)
    lt = blaster.bv_ult(av, bv)
    le = blaster.bv_ule(av, bv)
    eq = blaster.bv_eq(av, bv)
    blaster.assert_lit(lt if a < b else -lt)
    blaster.assert_lit(le if a <= b else -le)
    blaster.assert_lit(eq if a == b else -eq)
    assert blaster.check_sat()


def test_not_within_width():
    blaster = BitBlaster()
    result = blaster.bv_not(blaster.constant(0b10100101, WIDTH))
    _assert_equals_value(blaster, result, 0b01011010)


def test_variables_are_cached():
    blaster = BitBlaster()
    a1 = blaster.variable("x", WIDTH)
    a2 = blaster.variable("x", WIDTH)
    assert a1 == a2


def test_free_variable_comparison_is_satisfiable_both_ways():
    blaster = BitBlaster()
    x = blaster.variable("x", WIDTH)
    limit = blaster.constant(100, WIDTH)
    lt = blaster.bv_ult(x, limit)
    blaster.assert_lit(lt)
    assert blaster.check_sat()  # some x < 100 exists


def test_xtime_invariant_via_blasting():
    """The AES xtime core: ((2n) & 0xff) ^ 0x1b stays within a byte."""
    blaster = BitBlaster()
    width = 16
    n = blaster.variable("num", width)
    blaster.assert_lit(blaster.bv_ule(n, blaster.constant(255, width)))
    doubled = blaster.bv_mul(n, blaster.constant(2, width))
    masked = blaster.bv_and(doubled, blaster.constant(0xFF, width))
    xored = blaster.bv_xor(masked, blaster.constant(0x1B, width))
    over = blaster.bv_ult(blaster.constant(255, width), xored)
    blaster.assert_lit(over)  # claim: result can exceed 255
    assert not blaster.check_sat()  # refuted
