"""Tests for the DPLL SAT solver, including a brute-force oracle."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.solvers.sat import is_satisfiable, solve


class TestBasics:
    def test_empty_formula_sat(self):
        assert solve([]).sat

    def test_unit_clause(self):
        result = solve([[1]])
        assert result.sat
        assert result.model[1] is True

    def test_contradictory_units(self):
        assert not solve([[1], [-1]]).sat

    def test_empty_clause_unsat(self):
        assert not solve([[1], []]).sat

    def test_simple_implication_chain(self):
        # 1, 1→2, 2→3, ¬3 is UNSAT
        assert not solve([[1], [-1, 2], [-2, 3], [-3]]).sat

    def test_tautological_clause_ignored(self):
        assert solve([[1, -1], [2]]).sat

    def test_model_satisfies_formula(self):
        cnf = [[1, 2], [-1, 3], [-2, -3], [2, 3]]
        result = solve(cnf)
        assert result.sat
        model = result.model
        for clause in cnf:
            assert any(model.get(abs(l), False) == (l > 0) for l in clause)


def _pigeonhole(holes: int):
    """PHP(holes+1, holes): classic UNSAT family."""
    pigeons = holes + 1

    def var(p, h):
        return p * holes + h + 1

    cnf = []
    for p in range(pigeons):
        cnf.append([var(p, h) for h in range(holes)])
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                cnf.append([-var(p1, h), -var(p2, h)])
    return cnf


class TestPigeonhole:
    @pytest.mark.parametrize("holes", [1, 2, 3, 4])
    def test_pigeonhole_unsat(self, holes):
        assert not solve(_pigeonhole(holes)).sat

    def test_pigeons_fit_when_equal(self):
        # n pigeons into n holes is SAT (drop one pigeon's clauses)
        holes = 3
        cnf = _pigeonhole(holes)
        # remove the clauses of the last pigeon (the at-least-one and its conflicts)
        cnf = [cl for cl in cnf if all(abs(l) <= holes * holes for l in cl)]
        assert solve(cnf).sat


def _brute_force(cnf):
    atoms = sorted({abs(l) for clause in cnf for l in clause})
    if not atoms:
        return all(cnf)  # empty clause check
    for bits in itertools.product([False, True], repeat=len(atoms)):
        env = dict(zip(atoms, bits))
        if all(any(env[abs(l)] == (l > 0) for l in clause) for clause in cnf):
            return True
    return False


_cnf = st.lists(
    st.lists(
        st.integers(1, 5).flatmap(lambda v: st.sampled_from([v, -v])),
        min_size=1,
        max_size=4,
    ),
    min_size=1,
    max_size=12,
)


@settings(max_examples=300, deadline=None)
@given(_cnf)
def test_dpll_agrees_with_brute_force(cnf):
    assert solve(cnf).sat == _brute_force(cnf)


@settings(max_examples=100, deadline=None)
@given(_cnf)
def test_models_are_genuine(cnf):
    result = solve(cnf)
    if result.sat:
        model = result.model
        for clause in cnf:
            assert any(model.get(abs(l), False) == (l > 0) for l in clause)
