"""Corruption-recovery tests for the persistent proof cache.

A crash mid-flush (or a hostile disk) can leave a truncated
``meta.json``, a stranded ``.tmp`` file, or a garbage shard.  The
cache must treat all of them as "entry absent": checks succeed by
recomputing, the damage is counted, and the next flush rewrites the
shard whole.
"""

import json
import os
import time

from repro.batch import check_many
from repro.batch.cache import ProofCache
from repro.logic.prove import Logic

GOOD = """
(: max : [x : Int] [y : Int]
   -> [z : Int #:where (and (>= z x) (>= z y))])
(define (max x y) (if (> x y) x y))
"""


def _prime(cache_dir, tmp_path):
    """Flush one checked module into the cache; returns its path."""
    module = tmp_path / "good.rkt"
    module.write_text(GOOD)
    report = check_many([str(module)], jobs=1, cache_dir=str(cache_dir),
                        logic=Logic())
    assert all(v.ok for v in report.verdicts)
    return module


def _shard_paths(cache_dir):
    shard_dir = os.path.join(str(cache_dir), "shards")
    return sorted(
        os.path.join(shard_dir, name)
        for name in os.listdir(shard_dir)
        if name.endswith(".json")
    )


class TestTruncatedMeta:
    def test_check_succeeds_and_meta_is_repaired(self, tmp_path):
        cache_dir = tmp_path / "cache"
        module = _prime(cache_dir, tmp_path)
        meta = cache_dir / "meta.json"
        meta.write_text('{"format"')  # killed mid-write
        report = check_many([str(module)], jobs=1, cache_dir=str(cache_dir),
                            logic=Logic())
        assert all(v.ok for v in report.verdicts)
        # opening rewrote a valid meta.json
        assert json.loads(meta.read_text())["format"] >= 1

    def test_truncated_meta_is_counted(self, tmp_path):
        cache_dir = tmp_path / "cache"
        _prime(cache_dir, tmp_path)
        (cache_dir / "meta.json").write_text('{"format"')
        cache = ProofCache(str(cache_dir))
        assert cache.shards_skipped == 1


class TestGarbageShard:
    def test_check_succeeds_over_garbage_shards(self, tmp_path):
        cache_dir = tmp_path / "cache"
        module = _prime(cache_dir, tmp_path)
        shards = _shard_paths(cache_dir)
        assert shards, "priming flushed no shards"
        for path in shards:
            with open(path, "w") as handle:
                handle.write('{"torn": tru')  # mid-token truncation
        report = check_many([str(module)], jobs=1, cache_dir=str(cache_dir),
                            logic=Logic())
        assert all(v.ok for v in report.verdicts)

    def test_garbage_shard_is_counted_and_served_empty(self, tmp_path):
        cache_dir = tmp_path / "cache"
        _prime(cache_dir, tmp_path)
        victim = _shard_paths(cache_dir)[0]
        with open(victim, "w") as handle:
            handle.write("not json at all")
        cache = ProofCache(str(cache_dir))
        rule_hits = {}
        cache.bind_stats(rule_hits)
        key_prefix = os.path.basename(victim)[:2]
        assert cache.get_prove(key_prefix + "0" * 62) is None
        assert cache.shards_skipped == 1
        assert rule_hits["cache.shard-skipped"] == 1
        # the same shard is not re-counted on every probe
        assert cache.get_prove(key_prefix + "1" * 62) is None
        assert cache.shards_skipped == 1

    def test_wrong_shape_shard_is_skipped(self, tmp_path):
        cache_dir = tmp_path / "cache"
        _prime(cache_dir, tmp_path)
        victim = _shard_paths(cache_dir)[0]
        with open(victim, "w") as handle:
            json.dump([1, 2, 3], handle)  # valid JSON, not a dict
        cache = ProofCache(str(cache_dir))
        assert cache.get_prove(os.path.basename(victim)[:2] + "0" * 62) is None
        assert cache.shards_skipped == 1

    def test_missing_shard_is_not_corruption(self, tmp_path):
        cache_dir = tmp_path / "cache"
        cache = ProofCache(str(cache_dir))
        assert cache.get_prove("ab" + "0" * 62) is None
        assert cache.shards_skipped == 0

    def test_next_flush_repairs_the_shard(self, tmp_path):
        cache_dir = tmp_path / "cache"
        module = _prime(cache_dir, tmp_path)
        shards = _shard_paths(cache_dir)
        for path in shards:
            with open(path, "w") as handle:
                handle.write('{"torn": tru')
        # a fresh engine re-checks (recomputing everything) and flushes:
        # the rewrite replaces the garbage with valid shards
        report = check_many([str(module)], jobs=1, cache_dir=str(cache_dir),
                            logic=Logic())
        assert all(v.ok for v in report.verdicts)
        repaired = 0
        for path in _shard_paths(cache_dir):
            with open(path) as handle:
                json.load(handle)  # raises if still garbage
            repaired += 1
        assert repaired >= 1


class TestStaleTmpSweep:
    def test_old_tmp_is_swept_at_open(self, tmp_path):
        cache_dir = tmp_path / "cache"
        _prime(cache_dir, tmp_path)
        stale = cache_dir / "shards" / "ab.crashed.tmp"
        stale.write_text('{"half": ')
        old = time.time() - 2 * ProofCache.STALE_TMP_SECONDS
        os.utime(stale, (old, old))
        ProofCache(str(cache_dir))
        assert not stale.exists()

    def test_young_tmp_is_left_alone(self, tmp_path):
        # a young .tmp may be a live concurrent flush mid-write
        cache_dir = tmp_path / "cache"
        _prime(cache_dir, tmp_path)
        young = cache_dir / "shards" / "ab.inflight.tmp"
        young.write_text('{"half": ')
        ProofCache(str(cache_dir))
        assert young.exists()
