"""Higher-order functions, polymorphic definitions, ascriptions."""

import pytest

from repro.checker.check import check_program_text
from repro.checker.errors import CheckError
from repro.interp.eval import run_program_text


def checks(src):
    check_program_text(src)
    return True


def fails(src):
    with pytest.raises(CheckError):
        check_program_text(src)
    return True


class TestUserPolymorphism:
    def test_identity(self):
        assert checks(
            """
            (: id : (All (A) ([x : A] -> A)))
            (define (id x) x)
            """
        )

    def test_identity_must_not_specialise(self):
        assert fails(
            """
            (: id : (All (A) ([x : A] -> A)))
            (define (id x) 5)
            """
        )

    def test_poly_first(self):
        assert checks(
            """
            (: first : (All (A B) ([p : (Pairof A B)] -> A)))
            (define (first p) (fst p))
            """
        )

    def test_vec_head_with_refined_domain(self):
        assert checks(
            """
            (: head : (All (A) [v : (Vecof A) #:where (< 0 (len v))] -> A))
            (define (head v) (safe-vec-ref v 0))
            """
        )

    def test_vec_head_caller_must_prove_nonempty(self):
        base = """
        (: head : (All (A) [v : (Vecof A) #:where (< 0 (len v))] -> A))
        (define (head v) (safe-vec-ref v 0))
        """
        assert checks(base + "(head (vector 1 2))")
        assert fails(
            base
            + """
            (: use : (Vecof Int) -> Int)
            (define (use v) (head v))
            """
        )


class TestHigherOrder:
    def test_function_argument(self):
        assert checks(
            """
            (: twice : [f : (Int -> Int)] [x : Int] -> Int)
            (define (twice f x) (f (f x)))
            (: inc : Int -> Int)
            (define (inc n) (+ n 1))
            (twice inc 5)
            """
        )

    def test_function_argument_runs(self):
        _defs, results = run_program_text(
            """
            (define (twice f x) (f (f x)))
            (define (inc n) (+ n 1))
            (twice inc 5)
            """
        )
        assert results == (7,)

    def test_annotated_lambda_argument(self):
        assert checks(
            """
            (: apply1 : [f : (Int -> Int)] -> Int)
            (define (apply1 f) (f 1))
            (apply1 (λ ([x : Int]) (* x x)))
            """
        )

    def test_wrong_function_type_rejected(self):
        assert fails(
            """
            (: apply1 : [f : (Int -> Int)] -> Int)
            (define (apply1 f) (f 1))
            (: not-int : Int -> Bool)
            (define (not-int x) #t)
            (apply1 not-int)
            """
        )

    def test_refined_function_domain_contravariance(self):
        # a function accepting all Ints may flow where Nat-accepting is needed
        assert checks(
            """
            (: use : [f : (Nat -> Int)] -> Int)
            (define (use f) (f 3))
            (: g : Int -> Int)
            (define (g x) x)
            (use g)
            """
        )

    def test_refined_function_domain_contravariance_negative(self):
        assert fails(
            """
            (: use : [f : (Int -> Int)] -> Int)
            (define (use f) (f -3))
            (: g : Nat -> Int)
            (define (g x) x)
            (use g)
            """
        )

    def test_returning_functions(self):
        assert checks(
            """
            (: adder : Int -> (Int -> Int))
            (define (adder n) (λ ([m : Int]) (+ n m)))
            ((adder 3) 4)
            """
        )


class TestAscriptions:
    def test_ascribed_lambda(self):
        assert checks("(ann (λ (x) x) (Int -> Int))")

    def test_ascribed_lambda_bad_body(self):
        assert fails("(ann (λ (x) #t) (Int -> Int))")

    def test_ascription_weakens(self):
        assert checks(
            """
            (: f : Int -> Int)
            (define (f x) (ann (abs x) Int))
            """
        )

    def test_ascription_cannot_strengthen(self):
        assert fails(
            """
            (: f : Int -> Nat)
            (define (f x) (ann x Nat))
            """
        )

    def test_let_with_annotation(self):
        assert checks(
            """
            (: f : (Vecof Int) -> Nat)
            (define (f v) (let ([n : Nat (len v)]) n))
            """
        )


class TestDependentRanges:
    def test_range_depends_on_argument(self):
        assert checks(
            """
            (: bump : [x : Int] -> [r : Int #:where (> r x)])
            (define (bump x) (+ x 1))
            (: use : Int -> Int)
            (define (use a)
              (let ([b (bump a)])
                (if (> b a) 1 2)))
            """
        )

    def test_range_fact_flows_through_existential(self):
        # bump's result has no symbolic object, so an existential binder
        # carries {r | r > x}; the subtraction's linear object plus that
        # fact proves the Nat obligation.
        assert checks(
            """
            (: bump : [x : Int] -> [r : Int #:where (> r x)])
            (define (bump x) (+ x 1))
            (: gap : Int -> Nat)
            (define (gap a) (let ([b (bump a)]) (- b a)))
            """
        )

    def test_without_range_fact_rejected(self):
        assert fails(
            """
            (: bump : [x : Int] -> Int)
            (define (bump x) (+ x 1))
            (: gap : Int -> Nat)
            (define (gap a) (let ([b (bump a)]) (- b a)))
            """
        )
