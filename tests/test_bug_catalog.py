"""The auto-triage machinery and the committed bug catalog.

Triage: violations sharing a failing-trace fingerprint collapse into
one group, keeping the smallest repro and earliest sighting.  Catalog:
every entry is well-formed and its pinned regression test actually
exists — a catalog pointing at deleted tests is worse than none.
"""

import re
from pathlib import Path

from repro.fuzz.oracles import Violation
from repro.study.bugs import BUG_CATALOG, TriagedBug, trace_fingerprint, triage
from repro.study.report import bug_study_table

REPO = Path(__file__).resolve().parent.parent


# ----------------------------------------------------------------------
# fingerprints
# ----------------------------------------------------------------------
def test_fingerprint_is_stable_and_trace_based():
    source = "(define x (+ 1 2))"
    assert trace_fingerprint(source) == trace_fingerprint(source)
    # alpha-renaming does not move the trace: same rules, same theories
    renamed = "(define y (+ 1 2))"
    assert trace_fingerprint(source) == trace_fingerprint(renamed)


def test_fingerprint_separates_different_failures():
    accepted = trace_fingerprint("(define x 1)")
    rejected = trace_fingerprint("(define x (vector-ref (vector 1) 5))")
    unparseable = trace_fingerprint("(define x")
    assert len({accepted, rejected, unparseable}) == 3


def test_fingerprint_incorporates_oracle():
    source = "(define x 1)"
    assert trace_fingerprint(source, "eval") != trace_fingerprint(source, "model")


# ----------------------------------------------------------------------
# triage
# ----------------------------------------------------------------------
def _violation(program, source, oracle="eval", kind="RacketError",
               shrunk=None, message="boom"):
    return Violation(
        oracle=oracle, program=program, seed=program * 7, kind=kind,
        message=message, source=source, shrunk=shrunk,
    )


def test_triage_deduplicates_same_trace():
    bugs = triage([
        _violation(4, "(define x (+ 1 2))"),
        _violation(9, "(define y (+ 1 2))"),   # same trace, later sighting
        _violation(2, "(define z (+ 1 2))"),   # same trace, earliest
    ])
    assert len(bugs) == 1
    bug = bugs[0]
    assert isinstance(bug, TriagedBug)
    assert bug.count == 3
    assert bug.first_program == 2 and bug.first_seed == 14
    assert bug.oracle == "eval"


def test_triage_prefers_shrunk_repro_and_smallest():
    bugs = triage([
        _violation(1, "(define a (+ 1 2))\n(define b 3)", shrunk="(define a (+ 1 2))"),
        _violation(2, "(define c (+ 1 2))"),
    ])
    assert len(bugs) == 1
    assert bugs[0].repro in ("(define a (+ 1 2))", "(define c (+ 1 2))")
    assert "define b" not in bugs[0].repro


def test_triage_splits_different_oracles():
    bugs = triage([
        _violation(1, "(define x 1)", oracle="eval"),
        _violation(2, "(define x 1)", oracle="model"),
    ])
    assert len(bugs) == 2
    assert sorted(b.oracle for b in bugs) == ["eval", "model"]


def test_triage_groups_serialize():
    import json

    bugs = triage([_violation(1, "(define x 1)")])
    json.dumps([bug.as_dict() for bug in bugs])


# ----------------------------------------------------------------------
# the committed catalog
# ----------------------------------------------------------------------
def test_catalog_has_the_first_bugfix_batch():
    assert len(BUG_CATALOG) >= 3
    fixed = [record for record in BUG_CATALOG if record.status == "fixed"]
    assert len(fixed) >= 3


def test_catalog_entries_are_well_formed():
    ids = [record.bug_id for record in BUG_CATALOG]
    assert len(ids) == len(set(ids)), "duplicate bug ids"
    for record in BUG_CATALOG:
        assert re.fullmatch(r"RTR-\d{3}", record.bug_id)
        assert record.status in ("fixed", "survived-audit")
        assert record.category in ("shrinker", "batch", "server", "solver", "checker")
        assert record.symptom and record.root_cause and record.repro
        assert record.first_seen and record.regression_test


def test_catalog_regression_tests_exist():
    for record in BUG_CATALOG:
        target = record.regression_test
        path, _, test_name = target.partition("::")
        test_file = REPO / path
        assert test_file.exists(), f"{record.bug_id}: {path} missing"
        if test_name:
            # the last :: segment is the function (classes may precede)
            function = test_name.rpartition("::")[2]
            body = test_file.read_text()
            assert f"def {function}" in body, (
                f"{record.bug_id}: {function} not found in {path}"
            )


def test_bug_study_table_renders_every_entry():
    table = bug_study_table()
    for record in BUG_CATALOG:
        assert record.bug_id in table
        assert record.status in table
    assert "fixed" in table and "survived audit" in table
