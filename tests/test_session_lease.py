"""Session leases, epoch guards, the goal batcher, and the worker pool.

The pieces the checking daemon is assembled from, tested in isolation:
``Logic.lease_session`` (caller-private theory overlays that never
touch shared state and never survive a reset), ``GoalBatcher``
(coalesced, serialized theory dispatch), and ``WorkerPool`` (resident
fork workers reused across batches).
"""

import threading

import pytest

from repro.batch import WorkerPool, check_many
from repro.logic.prove import Logic
from repro.server.batcher import BatchingTheoryDispatch, GoalBatcher
from repro.tr.objects import Var, obj_int
from repro.tr.props import lin_le


def _goal(lo, name):
    """The theory atom ``lo <= name``."""
    return lin_le(obj_int(lo), Var(name))


class TestSessionLease:
    def test_scoped_assumptions_are_visible_inside(self):
        logic = Logic()
        lease = logic.lease_session()
        fact = _goal(5, "x")
        weaker = _goal(3, "x")
        with lease.scoped([fact]) as session:
            assert session.entails(weaker)

    def test_scoped_assumptions_do_not_outlive_the_block(self):
        logic = Logic()
        lease = logic.lease_session()
        with lease.scoped([_goal(5, "x")]):
            pass
        assert not lease.entails(_goal(3, "x"))

    def test_two_leases_are_isolated(self):
        logic = Logic()
        lease_a = logic.lease_session()
        lease_b = logic.lease_session()
        with lease_a.scoped([_goal(5, "x")]):
            # B cannot observe A's in-flight assumption …
            assert not lease_b.entails(_goal(3, "x"))
        # … and the shared engine never saw it either.
        assert not logic.lease_session().entails(_goal(3, "x"))

    def test_lease_never_touches_shared_session_map(self):
        logic = Logic()
        lease = logic.lease_session()
        shared_before = dict(logic._sessions)
        with lease.scoped([_goal(5, "x")]) as session:
            session.entails(_goal(3, "x"))
        for key, shared in shared_before.items():
            assert logic._sessions[key] is shared

    def test_reset_invalidates_the_lease(self):
        logic = Logic()
        lease = logic.lease_session()
        lease.session()  # force the build
        assert lease.valid
        logic.reset_caches()
        assert not lease.valid

    def test_stale_lease_rebuilds_transparently(self):
        logic = Logic()
        lease = logic.lease_session()
        first = lease.session()
        logic.reset_caches()
        rebuilt = lease.session()
        assert rebuilt is not first
        assert lease.valid
        # answers are unchanged across the rebuild
        with lease.scoped([_goal(5, "x")]) as session:
            assert session.entails(_goal(3, "x"))

    def test_epoch_counts_resets(self):
        logic = Logic()
        assert logic.epoch == 0
        logic.reset_caches()
        logic.reset_caches()
        assert logic.epoch == 2

    def test_scoped_survives_mid_block_reset(self):
        logic = Logic()
        lease = logic.lease_session()
        with lease.scoped([_goal(5, "x")]):
            logic.reset_caches()
        # no crash, and the next use starts from a fresh session
        assert not lease.entails(_goal(3, "x"))


class _CountingSession:
    """A RegistrySession stand-in that counts entails_batch crossings."""

    def __init__(self):
        self.calls = 0
        self.lock = threading.Lock()
        self.in_flight = 0
        self.max_in_flight = 0

    def entails_batch(self, goals):
        with self.lock:
            self.calls += 1
            self.in_flight += 1
            self.max_in_flight = max(self.max_in_flight, self.in_flight)
        try:
            return [True for _ in goals]
        finally:
            with self.lock:
                self.in_flight -= 1


class TestGoalBatcher:
    def test_single_submission_passes_through(self):
        batcher = GoalBatcher()
        session = _CountingSession()
        answers = batcher.submit("k", session, ["g1", "g2"])
        assert answers == [True, True]
        assert session.calls == 1
        assert batcher.dispatches == 1

    def test_concurrent_same_key_submissions_merge(self):
        batcher = GoalBatcher(window=0.05)
        session = _CountingSession()
        results = {}

        def submit(tag):
            results[tag] = batcher.submit("k", session, [f"goal-{tag}"])

        threads = [
            threading.Thread(target=submit, args=(tag,)) for tag in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(results[tag] == [True] for tag in range(8))
        # strictly fewer session crossings than submissions …
        assert session.calls < 8
        assert batcher.submissions == 8
        assert batcher.merged == 8 - session.calls
        # … and never two threads inside the session at once.
        assert session.max_in_flight == 1

    def test_different_keys_do_not_merge(self):
        batcher = GoalBatcher()
        session_a, session_b = _CountingSession(), _CountingSession()
        assert batcher.submit("a", session_a, ["g"]) == [True]
        assert batcher.submit("b", session_b, ["g"]) == [True]
        assert session_a.calls == session_b.calls == 1

    def test_batching_dispatch_preserves_verdicts(self):
        """A Logic with the batching dispatch answers exactly like one
        without it — on real goals through the real kernel."""
        from repro.checker.check import Checker
        from repro.syntax.parser import parse_program

        source = """
        (: max : [x : Int] [y : Int]
           -> [z : Int #:where (and (>= z x) (>= z y))])
        (define (max x y) (if (> x y) x y))
        """
        plain = Logic()
        plain_types = Checker(logic=plain).check_program(parse_program(source))
        batched = Logic()
        batched.dispatch = BatchingTheoryDispatch(batched, GoalBatcher())
        batched_types = Checker(logic=batched).check_program(parse_program(source))
        assert plain_types == batched_types
        assert batched.stats.theory_goals > 0


class TestWorkerPool:
    def _corpus(self, tmp_path, count=6):
        from repro.fuzz.gen import generate_program

        paths = []
        for index in range(count):
            path = tmp_path / f"prog{index}.rkt"
            path.write_text(generate_program(2016, index).source)
            paths.append(str(path))
        return paths

    def test_jobs1_pool_matches_check_many(self, tmp_path):
        paths = self._corpus(tmp_path)
        with WorkerPool(jobs=1) as pool:
            report = pool.check_many(paths)
        reference = check_many(paths, jobs=1, logic=Logic())
        assert [(v.path, v.ok, v.error) for v in report.verdicts] == [
            (v.path, v.ok, v.error) for v in reference.verdicts
        ]

    def test_resident_pool_reused_across_batches(self, tmp_path):
        paths = self._corpus(tmp_path)
        with WorkerPool(jobs=2) as pool:
            first = pool.check_many(paths)
            resident_pool = pool._pool
            second = pool.check_many(paths)
            assert pool._pool is resident_pool  # no re-fork
            assert pool.batches == 2
        assert [(v.path, v.ok) for v in first.verdicts] == [
            (v.path, v.ok) for v in second.verdicts
        ]

    def test_pool_verdicts_match_sequential(self, tmp_path):
        paths = self._corpus(tmp_path)
        reference = check_many(paths, jobs=1, logic=Logic())
        with WorkerPool(jobs=3) as pool:
            report = pool.check_many(paths)
        assert [(v.path, v.ok, v.error) for v in report.verdicts] == [
            (v.path, v.ok, v.error) for v in reference.verdicts
        ]

    def test_close_is_idempotent(self):
        pool = WorkerPool(jobs=2)
        pool.close()
        pool.close()
        assert not pool.alive

    def test_bad_jobs_rejected(self):
        with pytest.raises(ValueError):
            WorkerPool(jobs=0)
